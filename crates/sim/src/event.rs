//! The pending-event set of the simulator.
//!
//! Two interchangeable backends share one public API and one total order:
//! every event is keyed on `(time, sequence)`, two events scheduled for the
//! same instant fire in the order they were scheduled, and the delivered
//! sequence is identical whichever backend holds the set. Stability matters
//! for reproducibility — the paper's workload writes a COMMIT record
//! exactly ε after the final data record, and several log-manager actions
//! can legitimately coincide.
//!
//! * **Heap** (the default): one binary heap, O(log n) scheduling. This is
//!   the `--shards 1` configuration.
//! * **Sharded** ([`EventQueue::configure_shards`], `--shards ≥ 2`): the
//!   flush array's completion events leave the central structure entirely.
//!   Each drive *lane* is a single-entry completion register grouped into
//!   contiguous drive *shards*; the paper's flush discipline — one request
//!   in flight per drive, a fixed transfer time — means a lane holds at
//!   most one future event and is never cancelled, so each shard advances
//!   its own clock from its registers under a conservative lookahead
//!   window (the transfer time bounds how soon an idle drive can produce a
//!   cross-shard effect). Everything else — the coordinator *spine* of
//!   workload arrivals, log-buffer timers and group-commit timeouts — goes
//!   into a calendar wheel (1024 × 2¹⁴ µs buckets with a bitmap index and
//!   an overflow heap) whose near-sorted insertion pattern makes both ends
//!   O(1) in the common case. Delivery merges shard registers, wheel and
//!   overflow by `(time, sequence)`, so the barrier at which shards
//!   exchange effects with the spine *is* the merge — determinism by
//!   construction, at any shard count.
//!
//! Cancellation uses *generation-stamped slots* instead of an auxiliary
//! tombstone set: every scheduled event borrows a slot from a free list and
//! stamps its entry with the slot's current generation. Cancelling (or
//! firing) bumps the generation, so a stale entry is recognised at pop
//! time by a single array compare — no hashing, no allocation, O(1). Dead
//! entries are discarded lazily as the structure drains past them; on the
//! heap backend, when they outnumber the live ones the heap is compacted
//! in place, so a workload that mass-cancels (the killed-transaction
//! retract path) cannot leave the heap dominated by corpses. On the
//! sharded backend corpses die when their wheel bucket reaches the
//! frontier, which the bounded event horizon keeps equally tight.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifies a scheduled event so it can later be cancelled.
///
/// A token is a `(slot, generation)` pair: cancelling checks that the slot
/// still carries the token's generation, which makes cancellation of an
/// already-fired (or already-cancelled) event a harmless no-op even after
/// the slot has been reused by later events.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    slot: u32,
    generation: u32,
}

#[derive(Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn is_live(&self, generations: &[u32]) -> bool {
        generations[self.slot as usize] == self.generation
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Below this heap size compaction is pointless — the lazy pop-time discard
/// clears a handful of tombstones for free.
const COMPACT_MIN_HEAP: usize = 64;

/// Calendar-wheel geometry of the sharded backend: 1024 buckets of 2¹⁴ µs
/// (≈ 16.4 ms) each span ≈ 16.8 s — beyond the longest event delay the
/// workload model produces (10 s transactions), so the overflow heap stays
/// cold in practice while still being correct when it isn't.
const WHEEL_BUCKETS: usize = 1024;
const WHEEL_WORDS: usize = WHEEL_BUCKETS / 64;
const BUCKET_SHIFT: u32 = 14;
const NO_ACTIVE: usize = usize::MAX;

#[inline]
fn wheel_bucket(at: SimTime) -> u64 {
    at.as_micros() >> BUCKET_SHIFT
}

/// First set bit at ring position ≥ `start` (wrapping), if any.
#[inline]
fn find_set_from(bitmap: &[u64; WHEEL_WORDS], start: usize) -> Option<usize> {
    let sw = start >> 6;
    let masked = bitmap[sw] & (!0u64 << (start & 63));
    if masked != 0 {
        return Some((sw << 6) + masked.trailing_zeros() as usize);
    }
    for i in 1..=WHEEL_WORDS {
        let w = (sw + i) % WHEEL_WORDS;
        if bitmap[w] != 0 {
            return Some((w << 6) + bitmap[w].trailing_zeros() as usize);
        }
    }
    None
}

/// One drive's completion register: the paper's single-request-in-flight
/// discipline means at most one future completion per drive, and the
/// manager never cancels one, so a plain slot replaces a heap residency.
#[derive(Clone)]
struct Lane<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// State of the sharded backend (see the module docs).
#[derive(Clone)]
struct Sharded<E> {
    /// Calendar wheel of the coordinator spine. Non-frontier buckets are
    /// unsorted append logs; the frontier bucket is kept sorted
    /// *ascending* by `(at, seq)` so its minimum pops from the deque
    /// front, and — because simulated time only advances — a new entry
    /// almost always carries the bucket's largest key and lands at the
    /// back in O(1).
    buckets: Vec<VecDeque<Entry<E>>>,
    /// One bit per non-empty bucket, for O(words) frontier scans.
    bitmap: [u64; WHEEL_WORDS],
    /// Absolute bucket index of the last wheel pop: live wheel entries can
    /// only exist in absolute buckets `[cursor, cursor + WHEEL_BUCKETS)`.
    cursor: u64,
    /// Ring index of the bucket currently sorted (frontier), or
    /// `NO_ACTIVE`.
    active: usize,
    /// Physical entries in the wheel, corpses included.
    wheel_len: usize,
    /// Per-drive completion registers.
    lanes: Vec<Option<Lane<E>>>,
    /// Drive → shard map (contiguous, near-even ranges).
    lane_shard: Vec<u32>,
    /// Cached per-shard minimum `(at, seq, lane)` over that shard's
    /// occupied registers.
    shard_min: Vec<Option<(SimTime, u64, u32)>>,
    shards: u32,
    /// Shard that owned the most recent lane delivery (`u32::MAX` none);
    /// a change means the delivery frontier crossed shards.
    last_lane_shard: u32,
    sync_rounds: u64,
    lane_events: u64,
}

impl<E> Sharded<E> {
    fn new(shards: u32, lanes: usize) -> Self {
        let lane_shard = (0..lanes)
            .map(|l| (l as u64 * u64::from(shards) / lanes as u64) as u32)
            .collect();
        Sharded {
            buckets: (0..WHEEL_BUCKETS).map(|_| VecDeque::new()).collect(),
            bitmap: [0; WHEEL_WORDS],
            cursor: 0,
            active: NO_ACTIVE,
            wheel_len: 0,
            lanes: (0..lanes).map(|_| None).collect(),
            lane_shard,
            shard_min: (0..shards).map(|_| None).collect(),
            shards,
            last_lane_shard: u32::MAX,
            sync_rounds: 0,
            lane_events: 0,
        }
    }

    /// Minimum `(at, seq)` across every shard's register bank.
    #[inline]
    fn lane_min(&self) -> Option<(SimTime, u64, u32)> {
        let mut best: Option<(SimTime, u64, u32)> = None;
        for m in self.shard_min.iter().flatten() {
            if best.is_none_or(|b| (m.0, m.1) < (b.0, b.1)) {
                best = Some(*m);
            }
        }
        best
    }

    /// Recomputes one shard's cached minimum by scanning its registers.
    fn rescan_shard(&mut self, shard: usize) {
        let mut best: Option<(SimTime, u64, u32)> = None;
        for (l, lane) in self.lanes.iter().enumerate() {
            if self.lane_shard[l] as usize != shard {
                continue;
            }
            if let Some(lane) = lane {
                if best.is_none_or(|b| (lane.at, lane.seq) < (b.0, b.1)) {
                    best = Some((lane.at, lane.seq, l as u32));
                }
            }
        }
        self.shard_min[shard] = best;
    }
}

/// Candidate source of the sharded backend's three-way merge.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Source {
    Wheel,
    Overflow,
    Lane(u32),
}

/// Priority queue of future events.
///
/// `Clone` (for `E: Clone`) deep-copies the pending set, slot generations
/// and counters; outstanding [`EventToken`]s remain valid against the copy,
/// which is what lets a whole engine be snapshotted mid-run and resumed.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// The single heap of the default backend; the overflow heap (events
    /// beyond the wheel span) of the sharded backend.
    heap: BinaryHeap<Entry<E>>,
    /// Sharded backend state; `None` selects the heap backend.
    sharded: Option<Box<Sharded<E>>>,
    /// Current generation per slot. An entry is live iff its stamped
    /// generation matches its slot's.
    generations: Vec<u32>,
    /// Slots available for reuse.
    free_slots: Vec<u32>,
    /// Live (scheduled, not fired, not cancelled) events.
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
    tombstones_discarded: u64,
    compactions: u64,
    heap_peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (heap backend).
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sharded: None,
            generations: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            tombstones_discarded: 0,
            compactions: 0,
            heap_peak: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            generations: Vec::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Switches an empty queue to the sharded backend: `lanes` drive
    /// completion registers partitioned into `shards` contiguous shards,
    /// plus the calendar-wheel spine. `shards ≤ 1` (or no lanes) keeps the
    /// heap backend — that *is* the `--shards 1` configuration, so speedup
    /// measured against it prices the whole restructuring.
    ///
    /// The delivered event order is identical to the heap backend's for
    /// every shard count (see the module docs); only host-side wall clock
    /// and the [`crate::perfstats::QueueStats`] occupancy counters differ.
    ///
    /// # Panics
    /// Panics if events are already pending — the backend must be chosen
    /// before the first `schedule`.
    pub fn configure_shards(&mut self, shards: u32, lanes: usize) {
        assert!(
            self.live == 0 && self.heap.is_empty(),
            "configure_shards must run before any event is scheduled"
        );
        if shards <= 1 || lanes == 0 {
            self.sharded = None;
        } else {
            self.sharded = Some(Box::new(Sharded::new(shards.min(lanes as u32), lanes)));
        }
    }

    /// Shard count of the active backend (1 for the heap backend).
    pub fn shards(&self) -> u32 {
        self.sharded.as_ref().map_or(1, |s| s.shards)
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Returns a token usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.generations.len();
                assert!(s < u32::MAX as usize, "event queue slots exhausted");
                self.generations.push(0);
                s as u32
            }
        };
        let generation = self.generations[slot as usize];
        self.live += 1;
        let entry = Entry {
            at,
            seq,
            slot,
            generation,
            event,
        };
        if self.sharded.is_some() {
            self.wheel_insert(entry);
        } else {
            self.heap.push(entry);
            self.heap_peak = self.heap_peak.max(self.heap.len());
        }
        EventToken { slot, generation }
    }

    /// Schedules a drive-shard completion event into lane `lane`.
    ///
    /// On the sharded backend this bypasses the spine entirely: the event
    /// lands in the drive's single-entry register (the flush protocol
    /// guarantees one outstanding completion per drive, never cancelled).
    /// On the heap backend — or for an out-of-range or, defensively, an
    /// occupied lane — it degrades to a plain [`EventQueue::schedule`].
    /// Either way the event joins the same `(time, sequence)` total order.
    pub fn schedule_lane(&mut self, lane: usize, at: SimTime, event: E) {
        let fits = self
            .sharded
            .as_ref()
            .is_some_and(|s| lane < s.lanes.len() && s.lanes[lane].is_none());
        if !fits {
            self.schedule(at, event);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.live += 1;
        let s = self.sharded.as_mut().expect("checked above");
        s.lanes[lane] = Some(Lane { at, seq, event });
        let shard = s.lane_shard[lane] as usize;
        if s.shard_min[shard].is_none_or(|b| (at, seq) < (b.0, b.1)) {
            s.shard_min[shard] = Some((at, seq, lane as u32));
        }
    }

    /// Inserts a spine entry into the wheel (or the overflow heap when it
    /// is beyond the wheel span).
    fn wheel_insert(&mut self, entry: Entry<E>) {
        let s = self.sharded.as_mut().expect("sharded backend");
        let abs = wheel_bucket(entry.at);
        if abs >= s.cursor + WHEEL_BUCKETS as u64 {
            self.heap.push(entry);
            let physical = self.heap.len() + s.wheel_len;
            self.heap_peak = self.heap_peak.max(physical);
            return;
        }
        let idx = (abs as usize) & (WHEEL_BUCKETS - 1);
        let bucket = &mut s.buckets[idx];
        if idx == s.active {
            // The frontier bucket is sorted ascending; a monotone schedule
            // makes the new key the bucket maximum, so the back-append
            // fast path covers almost every insert.
            let key = (entry.at, entry.seq);
            if bucket.back().is_none_or(|e| (e.at, e.seq) < key) {
                bucket.push_back(entry);
            } else {
                let pos = bucket.partition_point(|e| (e.at, e.seq) < key);
                bucket.insert(pos, entry);
            }
        } else {
            bucket.push_back(entry);
        }
        s.bitmap[idx >> 6] |= 1 << (idx & 63);
        s.wheel_len += 1;
        let physical = self.heap.len() + s.wheel_len;
        self.heap_peak = self.heap_peak.max(physical);
    }

    /// `(at, seq)` of the earliest live wheel entry, discarding corpses at
    /// the frontier. Leaves the frontier bucket sorted with its minimum at
    /// the front.
    fn wheel_min(&mut self) -> Option<(SimTime, u64)> {
        let s = self.sharded.as_mut().expect("sharded backend");
        loop {
            if s.wheel_len == 0 {
                return None;
            }
            let start = (s.cursor as usize) & (WHEEL_BUCKETS - 1);
            let idx = find_set_from(&s.bitmap, start)
                .expect("non-empty wheel must have a set bucket bit");
            if s.active != idx {
                s.buckets[idx]
                    .make_contiguous()
                    .sort_unstable_by_key(|e| (e.at, e.seq));
                s.active = idx;
            }
            while let Some(e) = s.buckets[idx].front() {
                if e.is_live(&self.generations) {
                    return Some((e.at, e.seq));
                }
                s.buckets[idx].pop_front();
                s.wheel_len -= 1;
                self.tombstones_discarded += 1;
            }
            // Bucket held only corpses: clear it and rescan.
            s.bitmap[idx >> 6] &= !(1 << (idx & 63));
            s.active = NO_ACTIVE;
        }
    }

    /// Pops the entry [`EventQueue::wheel_min`] just surfaced.
    fn wheel_pop(&mut self) -> (SimTime, E) {
        let s = self.sharded.as_mut().expect("sharded backend");
        let idx = s.active;
        debug_assert_ne!(idx, NO_ACTIVE, "wheel_pop without a frontier");
        let entry = s.buckets[idx]
            .pop_front()
            .expect("frontier bucket non-empty");
        s.wheel_len -= 1;
        s.cursor = s.cursor.max(wheel_bucket(entry.at));
        if s.buckets[idx].is_empty() {
            s.bitmap[idx >> 6] &= !(1 << (idx & 63));
            s.active = NO_ACTIVE;
        }
        self.retire_slot(entry.slot);
        (entry.at, entry.event)
    }

    /// `(at, seq)` of the overflow-heap head, discarding leading corpses.
    fn overflow_min(&mut self) -> Option<(SimTime, u64)> {
        while let Some(head) = self.heap.peek() {
            if head.is_live(&self.generations) {
                return Some((head.at, head.seq));
            }
            self.heap.pop();
            self.tombstones_discarded += 1;
        }
        None
    }

    /// Delivers the earliest lane event and re-derives its shard's clock.
    fn lane_pop(&mut self, lane: u32) -> (SimTime, E) {
        let s = self.sharded.as_mut().expect("sharded backend");
        let l = lane as usize;
        let entry = s.lanes[l].take().expect("winning lane is occupied");
        let shard = s.lane_shard[l] as usize;
        s.rescan_shard(shard);
        s.lane_events += 1;
        if s.last_lane_shard != shard as u32 {
            s.sync_rounds += 1;
            s.last_lane_shard = shard as u32;
        }
        self.live -= 1;
        (entry.at, entry.event)
    }

    /// The sharded backend's fused merge: earliest of {shard registers,
    /// wheel frontier, overflow head}, delivered only when within the
    /// horizon. This merge is the shard barrier — registers ahead of it
    /// keep their shard's clock advanced under the conservative window.
    fn pop_sharded(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let lane = self.sharded.as_ref().expect("sharded backend").lane_min();
        let wheel = self.wheel_min();
        let overflow = self.overflow_min();
        let mut best: Option<((SimTime, u64), Source)> = None;
        if let Some((at, seq, l)) = lane {
            best = Some(((at, seq), Source::Lane(l)));
        }
        for (cand, src) in [(wheel, Source::Wheel), (overflow, Source::Overflow)] {
            if let Some(key) = cand {
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, src));
                }
            }
        }
        let ((at, _), src) = best?;
        if at > horizon {
            return None;
        }
        Some(match src {
            Source::Wheel => self.wheel_pop(),
            Source::Lane(l) => self.lane_pop(l),
            Source::Overflow => {
                let entry = self.heap.pop().expect("peeked entry pops");
                self.retire_slot(entry.slot);
                (entry.at, entry.event)
            }
        })
    }

    /// Retires a slot: the generation bump invalidates every stored entry
    /// still stamped with the old generation, and the slot becomes
    /// reusable immediately (new entries carry the new generation).
    #[inline]
    fn retire_slot(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
        self.live -= 1;
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// harmless no-op. The stored entry becomes a tombstone that is discarded
    /// lazily on pop, or (heap backend) eagerly when tombstones outnumber
    /// live entries.
    pub fn cancel(&mut self, token: EventToken) {
        if self.generations[token.slot as usize] != token.generation {
            return; // already fired or cancelled
        }
        self.retire_slot(token.slot);
        self.cancelled_total += 1;
        self.maybe_compact();
    }

    /// Rebuilds the heap without its dead entries once they exceed half of
    /// it. Keeps mass cancellation (killed-transaction retraction) from
    /// letting the heap grow without bound while dead entries wait to
    /// drain past the pop. Heap backend only: wheel corpses are bounded by
    /// the event horizon and die at the frontier instead.
    fn maybe_compact(&mut self) {
        if self.sharded.is_some() {
            return;
        }
        let dead = self.heap.len() - self.live;
        if self.heap.len() >= COMPACT_MIN_HEAP && dead * 2 > self.heap.len() {
            let generations = &self.generations;
            self.heap.retain(|e| e.is_live(generations));
            self.tombstones_discarded += dead as u64;
            self.compactions += 1;
            debug_assert_eq!(self.heap.len(), self.live);
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.sharded.is_some() {
            return self.pop_sharded(SimTime::MAX);
        }
        while let Some(entry) = self.heap.pop() {
            if entry.is_live(&self.generations) {
                self.retire_slot(entry.slot);
                return Some((entry.at, entry.event));
            }
            self.tombstones_discarded += 1; // cancelled event's corpse
        }
        None
    }

    /// Removes and returns the earliest live event at or before `horizon`;
    /// leaves the queue untouched (beyond discarding leading tombstones)
    /// when the earliest live event is after the horizon.
    ///
    /// This is the event loop's fused peek-then-pop: one traversal per
    /// delivered event instead of two.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.sharded.is_some() {
            return self.pop_sharded(horizon);
        }
        loop {
            let head = self.heap.peek()?;
            if !head.is_live(&self.generations) {
                self.heap.pop();
                self.tombstones_discarded += 1;
                continue;
            }
            if head.at > horizon {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry pops");
            self.retire_slot(entry.slot);
            return Some((entry.at, entry.event));
        }
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.sharded.is_some() {
            let lane = self
                .sharded
                .as_ref()
                .expect("sharded backend")
                .lane_min()
                .map(|(at, seq, _)| (at, seq));
            let wheel = self.wheel_min();
            let overflow = self.overflow_min();
            return [lane, wheel, overflow]
                .into_iter()
                .flatten()
                .min()
                .map(|(at, _)| at);
        }
        while let Some(entry) = self.heap.peek() {
            if entry.is_live(&self.generations) {
                return Some(entry.at);
            }
            self.heap.pop();
            self.tombstones_discarded += 1;
        }
        None
    }

    /// Count of live (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical stored length, counting not-yet-discarded tombstones (and,
    /// on the sharded backend, wheel and lane residents).
    pub fn heap_len(&self) -> usize {
        let extra = self.sharded.as_ref().map_or(0, |s| {
            s.wheel_len + s.lanes.iter().filter(|l| l.is_some()).count()
        });
        self.heap.len() + extra
    }

    /// Greatest physical stored length ever reached.
    pub fn heap_peak(&self) -> usize {
        self.heap_peak
    }

    /// Total number of `schedule` calls over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of effective `cancel` calls over the queue's lifetime.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Dead entries discarded so far (lazily or by compaction).
    pub fn tombstones_discarded(&self) -> u64 {
        self.tombstones_discarded
    }

    /// Number of compaction passes performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Queue counters snapshot for performance reporting.
    pub fn perf(&self) -> crate::perfstats::QueueStats {
        crate::perfstats::QueueStats {
            scheduled: self.scheduled_total,
            cancelled: self.cancelled_total,
            tombstones_discarded: self.tombstones_discarded,
            compactions: self.compactions,
            heap_peak: self.heap_peak,
            shards: self.shards(),
            sync_rounds: self.sharded.as_ref().map_or(0, |s| s.sync_rounds),
            effects_exchanged: self.sharded.as_ref().map_or(0, |s| s.lane_events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop_ = q.schedule(t(2), "drop");
        q.cancel(drop_);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), "keep")));
        assert_eq!(q.pop(), None);
        // Cancelling after the fact is a no-op.
        q.cancel(keep);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let first = q.schedule(t(1), 1u32);
        q.schedule(t(2), 2u32);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn counters_track_lifetime_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        q.cancel(a); // double-cancel counted once
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.pop();
        q.cancel(a); // event already fired: must not count or corrupt len
        assert_eq!(q.cancelled_total(), 0);
        let _b = q.schedule(t(2), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2), ())));
    }

    #[test]
    fn cancel_after_slot_reuse_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1u32);
        q.cancel(a);
        // The freed slot is reused with a bumped generation; the stale
        // token must not touch the new event.
        let b = q.schedule(t(2), 2u32);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.pop(), Some((t(2), 2)));
        let _ = b;
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10u64);
        assert_eq!(q.pop(), Some((t(10), 10)));
        q.schedule(t(5), 5);
        q.schedule(t(15), 15);
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.peek_time(), Some(t(15)));
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        let dead = q.schedule(t(1), 1u32);
        q.schedule(t(2), 2u32);
        q.schedule(t(5), 5u32);
        q.cancel(dead);
        // Tombstone at the head is discarded, live head is within horizon.
        assert_eq!(q.pop_at_or_before(t(3)), Some((t(2), 2)));
        // Next live event is past the horizon: untouched.
        assert_eq!(q.pop_at_or_before(t(3)), None);
        assert_eq!(q.len(), 1);
        // Horizon is inclusive.
        assert_eq!(q.pop_at_or_before(t(5)), Some((t(5), 5)));
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
    }

    #[test]
    fn mass_cancellation_compacts_heap() {
        let mut q = EventQueue::new();
        let tokens: Vec<EventToken> = (0..1000).map(|i| q.schedule(t(i), i)).collect();
        assert_eq!(q.heap_len(), 1000);
        // Kill-retraction pattern: cancel almost everything without popping.
        for tok in &tokens[..900] {
            q.cancel(*tok);
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.heap_len() <= 2 * q.len().max(COMPACT_MIN_HEAP),
            "dead entries must not dominate the heap: {} physical for {} live",
            q.heap_len(),
            q.len()
        );
        assert!(q.compactions() >= 1, "compaction must have run");
        // Everything still pops in order.
        let survivors: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(survivors, (900..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_preserves_order_and_tokens() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..500u64 {
            let tok = q.schedule(t(1000 - i), i);
            if i % 5 == 0 {
                keep.push((tok, i));
            } else {
                q.cancel(tok);
            }
        }
        // Live tokens stay cancellable after compaction runs.
        let (tok, val) = keep.pop().unwrap();
        q.cancel(tok);
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert!(!popped.contains(&val));
        assert_eq!(popped.len(), keep.len());
        let mut sorted = popped.clone();
        sorted.sort_by_key(|v| std::cmp::Reverse(*v)); // scheduled at t(1000-i)
        assert_eq!(popped, sorted);
    }

    #[test]
    fn small_heaps_skip_compaction() {
        let mut q = EventQueue::new();
        let toks: Vec<EventToken> = (0..20).map(|i| q.schedule(t(i), i)).collect();
        for tok in toks {
            q.cancel(tok);
        }
        assert_eq!(q.compactions(), 0, "below the size floor");
        assert_eq!(q.pop(), None);
        assert_eq!(q.heap_len(), 0, "pop drained the corpses");
    }

    // ---------------------------------------------------------------
    // Sharded backend
    // ---------------------------------------------------------------

    fn sharded(shards: u32, lanes: usize) -> EventQueue<u64> {
        let mut q = EventQueue::new();
        q.configure_shards(shards, lanes);
        q
    }

    /// Drains two queues in lock-step, asserting identical deliveries.
    fn assert_same_drain(a: &mut EventQueue<u64>, b: &mut EventQueue<u64>) {
        loop {
            let x = a.pop();
            let y = b.pop();
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn shards_leq_one_keeps_heap_backend() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.configure_shards(1, 10);
        assert_eq!(q.shards(), 1);
        q.configure_shards(4, 0);
        assert_eq!(q.shards(), 1);
        q.configure_shards(4, 10);
        assert_eq!(q.shards(), 4);
        // More shards than lanes clamps to one lane per shard.
        let mut q: EventQueue<u64> = EventQueue::new();
        q.configure_shards(16, 10);
        assert_eq!(q.shards(), 10);
    }

    #[test]
    fn sharded_pops_in_time_order() {
        let mut q = sharded(2, 4);
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule_lane(0, t(25), 25);
        q.schedule(t(20), 2);
        q.schedule_lane(3, t(5), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(25), 25)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_ties_fire_in_schedule_order_across_sources() {
        // Same instant in a lane and in the wheel: sequence decides, which
        // is schedule order — identical to the heap backend.
        let mut q = sharded(2, 2);
        q.schedule_lane(1, t(7), 100);
        q.schedule(t(7), 200);
        q.schedule_lane(0, t(7), 300);
        assert_eq!(q.pop(), Some((t(7), 100)));
        assert_eq!(q.pop(), Some((t(7), 200)));
        assert_eq!(q.pop(), Some((t(7), 300)));
    }

    #[test]
    fn sharded_matches_heap_on_random_workload() {
        // splitmix64-driven random schedule/cancel/pop interleaving must
        // deliver identically on both backends.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut shrd = sharded(4, 10);
        let mut now = 0u64; // µs
        let mut heap_tokens = Vec::new();
        let mut lane_busy = [false; 10];
        for i in 0..20_000u64 {
            match rng() % 10 {
                // Lane schedule: mirrors a flush completion 25 ms out.
                0..=2 => {
                    let lane = (rng() % 10) as usize;
                    if !lane_busy[lane] {
                        lane_busy[lane] = true;
                        let at = SimTime::from_micros(now + 25_000);
                        heap_tokens.push((heap.schedule(at, i), false));
                        shrd.schedule_lane(lane, at, i);
                    }
                }
                // Spine schedule with occasional long delay (overflow).
                3..=6 => {
                    let delay = if rng() % 100 == 0 {
                        20_000_000 + rng() % 1_000_000
                    } else {
                        rng() % 600_000
                    };
                    let at = SimTime::from_micros(now + delay);
                    let cancellable = rng() % 4 == 0;
                    let tok_h = heap.schedule(at, i);
                    let tok_s = shrd.schedule(at, i);
                    if cancellable {
                        heap_tokens.push((tok_h, true));
                        // Cancel the sharded twin immediately sometimes,
                        // later otherwise.
                        if rng() % 2 == 0 {
                            heap.cancel(tok_h);
                            shrd.cancel(tok_s);
                            heap_tokens.pop();
                        }
                    }
                }
                // Pop within a horizon.
                _ => {
                    let horizon = SimTime::from_micros(now + rng() % 400_000);
                    let a = heap.pop_at_or_before(horizon);
                    let b = shrd.pop_at_or_before(horizon);
                    assert_eq!(a, b, "divergence at step {i}");
                    if let Some((at, v)) = a {
                        now = now.max(at.as_micros());
                        // Free the lane this value occupied, if any.
                        let _ = v;
                        for l in lane_busy.iter_mut() {
                            *l = false; // coarse: allow reuse
                        }
                    }
                }
            }
        }
        assert_eq!(heap.len(), shrd.len());
        // Drain fully; both must agree to the end.
        assert_same_drain(&mut heap, &mut shrd);
    }

    #[test]
    fn lane_fallbacks_preserve_order() {
        let mut q = sharded(2, 2);
        // Out-of-range lane falls back to the spine.
        q.schedule_lane(7, t(1), 1);
        // Occupied lane falls back to the spine.
        q.schedule_lane(0, t(3), 3);
        q.schedule_lane(0, t(2), 2);
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert_eq!(q.pop(), Some((t(2), 2)));
        assert_eq!(q.pop(), Some((t(3), 3)));
        // Heap backend: schedule_lane degrades to schedule.
        let mut q: EventQueue<u64> = EventQueue::new();
        q.schedule_lane(0, t(2), 2);
        q.schedule_lane(1, t(1), 1);
        assert_eq!(q.pop(), Some((t(1), 1)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn sharded_cancellation_and_tokens_work() {
        let mut q = sharded(2, 4);
        let a = q.schedule(t(1), 1);
        let b = q.schedule(t(2), 2);
        q.schedule(t(3), 3);
        q.cancel(a);
        q.cancel(b);
        q.cancel(b); // double-cancel is a no-op
        assert_eq!(q.cancelled_total(), 2);
        assert_eq!(q.pop(), Some((t(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sharded_peek_time_merges_sources() {
        let mut q = sharded(2, 4);
        assert_eq!(q.peek_time(), None);
        q.schedule(t(20), 20);
        assert_eq!(q.peek_time(), Some(t(20)));
        q.schedule_lane(2, t(10), 10);
        assert_eq!(q.peek_time(), Some(t(10)));
        // Far-future overflow entry doesn't disturb the near frontier.
        q.schedule(SimTime::from_secs(100), 100);
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), 10)));
        assert_eq!(q.peek_time(), Some(t(20)));
    }

    #[test]
    fn sharded_overflow_events_deliver_in_order() {
        let mut q = sharded(2, 2);
        // Beyond the 16.8 s wheel span from cursor 0 → overflow heap.
        q.schedule(SimTime::from_secs(30), 30);
        q.schedule(SimTime::from_secs(20), 20);
        q.schedule(t(5), 5);
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 20)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 30)));
    }

    #[test]
    fn sharded_perf_counts_occupancy() {
        let mut q = sharded(2, 4);
        // Lanes 0–1 are shard 0, lanes 2–3 shard 1.
        q.schedule_lane(0, t(1), 1);
        q.schedule_lane(2, t(2), 2);
        q.schedule_lane(1, t(3), 3);
        q.schedule(t(10), 10);
        for _ in 0..4 {
            q.pop();
        }
        let p = q.perf();
        assert_eq!(p.shards, 2);
        assert_eq!(p.effects_exchanged, 3, "three lane deliveries");
        // shard 0 → shard 1 → shard 0: three handoffs from the initial
        // unowned state.
        assert_eq!(p.sync_rounds, 3);
        assert_eq!(p.scheduled, 4);
    }

    #[test]
    fn configure_shards_requires_empty_queue() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.schedule(t(1), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.configure_shards(2, 4);
        }));
        assert!(r.is_err(), "must refuse to switch backends mid-run");
    }

    #[test]
    fn sharded_clone_snapshots_everything() {
        let mut q = sharded(2, 4);
        q.schedule(t(5), 5);
        q.schedule_lane(1, t(3), 3);
        q.schedule(SimTime::from_secs(60), 60);
        let mut copy = q.clone();
        assert_same_drain(&mut q, &mut copy);
    }
}
