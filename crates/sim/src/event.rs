//! The pending-event set of the simulator.
//!
//! A binary heap keyed on `(time, sequence)` gives O(log n) scheduling and a
//! *stable* order: two events scheduled for the same instant fire in the
//! order they were scheduled. Stability matters for reproducibility — the
//! paper's workload writes a COMMIT record exactly ε after the final data
//! record, and several log-manager actions can legitimately coincide.
//!
//! Cancellation is supported through tombstones: `cancel` marks a token dead
//! and the heap lazily discards dead entries on pop. This is how the workload
//! driver retracts the remaining record writes of a killed transaction.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Identifies a scheduled event so it can later be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs of events scheduled but not yet fired or cancelled.
    pending: HashSet<u64>,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Returns a token usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// harmless no-op. The heap entry becomes a tombstone that is discarded
    /// lazily when the heap drains past its timestamp.
    pub fn cancel(&mut self, token: EventToken) {
        if self.pending.remove(&token.0) {
            self.cancelled_total += 1;
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.at, entry.event));
            }
            // else: tombstone of a cancelled event, skip
        }
        None
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Count of live (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of `schedule` calls over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of effective `cancel` calls over the queue's lifetime.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop_ = q.schedule(t(2), "drop");
        q.cancel(drop_);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), "keep")));
        assert_eq!(q.pop(), None);
        // Cancelling after the fact is a no-op.
        q.cancel(keep);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let first = q.schedule(t(1), 1u32);
        q.schedule(t(2), 2u32);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn counters_track_lifetime_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        q.cancel(a); // double-cancel counted once
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.pop();
        q.cancel(a); // event already fired: must not count or corrupt len
        assert_eq!(q.cancelled_total(), 0);
        let _b = q.schedule(t(2), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2), ())));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10u64);
        assert_eq!(q.pop(), Some((t(10), 10)));
        q.schedule(t(5), 5);
        q.schedule(t(15), 15);
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.peek_time(), Some(t(15)));
    }
}
