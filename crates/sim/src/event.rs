//! The pending-event set of the simulator.
//!
//! A binary heap keyed on `(time, sequence)` gives O(log n) scheduling and a
//! *stable* order: two events scheduled for the same instant fire in the
//! order they were scheduled. Stability matters for reproducibility — the
//! paper's workload writes a COMMIT record exactly ε after the final data
//! record, and several log-manager actions can legitimately coincide.
//!
//! Cancellation uses *generation-stamped slots* instead of an auxiliary
//! tombstone set: every scheduled event borrows a slot from a free list and
//! stamps its heap entry with the slot's current generation. Cancelling (or
//! firing) bumps the generation, so a stale heap entry is recognised at pop
//! time by a single array compare — no hashing, no allocation, O(1). Dead
//! entries are discarded lazily as the heap drains past them; when they
//! outnumber the live ones the heap is compacted in place, so a workload
//! that mass-cancels (the killed-transaction retract path) cannot leave the
//! heap dominated by corpses.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a scheduled event so it can later be cancelled.
///
/// A token is a `(slot, generation)` pair: cancelling checks that the slot
/// still carries the token's generation, which makes cancellation of an
/// already-fired (or already-cancelled) event a harmless no-op even after
/// the slot has been reused by later events.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventToken {
    slot: u32,
    generation: u32,
}

#[derive(Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn is_live(&self, generations: &[u32]) -> bool {
        generations[self.slot as usize] == self.generation
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Below this heap size compaction is pointless — the lazy pop-time discard
/// clears a handful of tombstones for free.
const COMPACT_MIN_HEAP: usize = 64;

/// Priority queue of future events.
///
/// `Clone` (for `E: Clone`) deep-copies the pending set, slot generations
/// and counters; outstanding [`EventToken`]s remain valid against the copy,
/// which is what lets a whole engine be snapshotted mid-run and resumed.
#[derive(Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Current generation per slot. An entry is live iff its stamped
    /// generation matches its slot's.
    generations: Vec<u32>,
    /// Slots available for reuse.
    free_slots: Vec<u32>,
    /// Live (scheduled, not fired, not cancelled) events.
    live: usize,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
    tombstones_discarded: u64,
    compactions: u64,
    heap_peak: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
            tombstones_discarded: 0,
            compactions: 0,
            heap_peak: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            generations: Vec::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Returns a token usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.generations.len();
                assert!(s < u32::MAX as usize, "event queue slots exhausted");
                self.generations.push(0);
                s as u32
            }
        };
        let generation = self.generations[slot as usize];
        self.live += 1;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            generation,
            event,
        });
        self.heap_peak = self.heap_peak.max(self.heap.len());
        EventToken { slot, generation }
    }

    /// Retires a slot: the generation bump invalidates every heap entry
    /// still stamped with the old generation, and the slot becomes
    /// reusable immediately (new entries carry the new generation).
    #[inline]
    fn retire_slot(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free_slots.push(slot);
        self.live -= 1;
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// harmless no-op. The heap entry becomes a tombstone that is discarded
    /// lazily on pop, or eagerly when tombstones outnumber live entries.
    pub fn cancel(&mut self, token: EventToken) {
        if self.generations[token.slot as usize] != token.generation {
            return; // already fired or cancelled
        }
        self.retire_slot(token.slot);
        self.cancelled_total += 1;
        self.maybe_compact();
    }

    /// Rebuilds the heap without its dead entries once they exceed half of
    /// it. Keeps mass cancellation (killed-transaction retraction) from
    /// letting the heap grow without bound while dead entries wait to
    /// drain past the pop.
    fn maybe_compact(&mut self) {
        let dead = self.heap.len() - self.live;
        if self.heap.len() >= COMPACT_MIN_HEAP && dead * 2 > self.heap.len() {
            let generations = &self.generations;
            self.heap.retain(|e| e.is_live(generations));
            self.tombstones_discarded += dead as u64;
            self.compactions += 1;
            debug_assert_eq!(self.heap.len(), self.live);
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.is_live(&self.generations) {
                self.retire_slot(entry.slot);
                return Some((entry.at, entry.event));
            }
            self.tombstones_discarded += 1; // cancelled event's corpse
        }
        None
    }

    /// Removes and returns the earliest live event at or before `horizon`;
    /// leaves the queue untouched (beyond discarding leading tombstones)
    /// when the earliest live event is after the horizon.
    ///
    /// This is the event loop's fused peek-then-pop: one heap traversal
    /// per delivered event instead of two.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            let head = self.heap.peek()?;
            if !head.is_live(&self.generations) {
                self.heap.pop();
                self.tombstones_discarded += 1;
                continue;
            }
            if head.at > horizon {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry pops");
            self.retire_slot(entry.slot);
            return Some((entry.at, entry.event));
        }
    }

    /// Time of the earliest live event, if any, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if entry.is_live(&self.generations) {
                return Some(entry.at);
            }
            self.heap.pop();
            self.tombstones_discarded += 1;
        }
        None
    }

    /// Count of live (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical heap length, counting not-yet-discarded tombstones.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Greatest physical heap length ever reached.
    pub fn heap_peak(&self) -> usize {
        self.heap_peak
    }

    /// Total number of `schedule` calls over the queue's lifetime.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of effective `cancel` calls over the queue's lifetime.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Dead heap entries discarded so far (lazily or by compaction).
    pub fn tombstones_discarded(&self) -> u64 {
        self.tombstones_discarded
    }

    /// Number of compaction passes performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Queue counters snapshot for performance reporting.
    pub fn perf(&self) -> crate::perfstats::QueueStats {
        crate::perfstats::QueueStats {
            scheduled: self.scheduled_total,
            cancelled: self.cancelled_total,
            tombstones_discarded: self.tombstones_discarded,
            compactions: self.compactions,
            heap_peak: self.heap_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let keep = q.schedule(t(1), "keep");
        let drop_ = q.schedule(t(2), "drop");
        q.cancel(drop_);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(1), "keep")));
        assert_eq!(q.pop(), None);
        // Cancelling after the fact is a no-op.
        q.cancel(keep);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let first = q.schedule(t(1), 1u32);
        q.schedule(t(2), 2u32);
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 2)));
    }

    #[test]
    fn counters_track_lifetime_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        q.cancel(a); // double-cancel counted once
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.pop();
        q.cancel(a); // event already fired: must not count or corrupt len
        assert_eq!(q.cancelled_total(), 0);
        let _b = q.schedule(t(2), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t(2), ())));
    }

    #[test]
    fn cancel_after_slot_reuse_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 1u32);
        q.cancel(a);
        // The freed slot is reused with a bumped generation; the stale
        // token must not touch the new event.
        let b = q.schedule(t(2), 2u32);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.pop(), Some((t(2), 2)));
        let _ = b;
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 10u64);
        assert_eq!(q.pop(), Some((t(10), 10)));
        q.schedule(t(5), 5);
        q.schedule(t(15), 15);
        assert_eq!(q.pop(), Some((t(5), 5)));
        assert_eq!(q.peek_time(), Some(t(15)));
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        let dead = q.schedule(t(1), 1u32);
        q.schedule(t(2), 2u32);
        q.schedule(t(5), 5u32);
        q.cancel(dead);
        // Tombstone at the head is discarded, live head is within horizon.
        assert_eq!(q.pop_at_or_before(t(3)), Some((t(2), 2)));
        // Next live event is past the horizon: untouched.
        assert_eq!(q.pop_at_or_before(t(3)), None);
        assert_eq!(q.len(), 1);
        // Horizon is inclusive.
        assert_eq!(q.pop_at_or_before(t(5)), Some((t(5), 5)));
        assert_eq!(q.pop_at_or_before(SimTime::MAX), None);
    }

    #[test]
    fn mass_cancellation_compacts_heap() {
        let mut q = EventQueue::new();
        let tokens: Vec<EventToken> = (0..1000).map(|i| q.schedule(t(i), i)).collect();
        assert_eq!(q.heap_len(), 1000);
        // Kill-retraction pattern: cancel almost everything without popping.
        for tok in &tokens[..900] {
            q.cancel(*tok);
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.heap_len() <= 2 * q.len().max(COMPACT_MIN_HEAP),
            "dead entries must not dominate the heap: {} physical for {} live",
            q.heap_len(),
            q.len()
        );
        assert!(q.compactions() >= 1, "compaction must have run");
        // Everything still pops in order.
        let survivors: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(survivors, (900..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_preserves_order_and_tokens() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..500u64 {
            let tok = q.schedule(t(1000 - i), i);
            if i % 5 == 0 {
                keep.push((tok, i));
            } else {
                q.cancel(tok);
            }
        }
        // Live tokens stay cancellable after compaction runs.
        let (tok, val) = keep.pop().unwrap();
        q.cancel(tok);
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert!(!popped.contains(&val));
        assert_eq!(popped.len(), keep.len());
        let mut sorted = popped.clone();
        sorted.sort_by_key(|v| std::cmp::Reverse(*v)); // scheduled at t(1000-i)
        assert_eq!(popped, sorted);
    }

    #[test]
    fn small_heaps_skip_compaction() {
        let mut q = EventQueue::new();
        let toks: Vec<EventToken> = (0..20).map(|i| q.schedule(t(i), i)).collect();
        for tok in toks {
            q.cancel(tok);
        }
        assert_eq!(q.compactions(), 0, "below the size floor");
        assert_eq!(q.pop(), None);
        assert_eq!(q.heap_len(), 0, "pop drained the corpses");
    }
}
