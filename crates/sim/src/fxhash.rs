//! A deterministic, fast hasher for dense integer keys.
//!
//! The simulator's hot tables (LOT, LTT, buffer pool, stable DB, workload
//! driver) are keyed by dense `u64` ids. `std`'s default SipHash is both
//! randomly seeded — which costs a `RandomState` per map and makes
//! iteration order vary between processes — and an order of magnitude
//! slower than needed for keys an adversary cannot choose. This module
//! vendors the FxHash construction (a multiply-and-rotate mix of each
//! machine word, as used by rustc's `FxHashMap`), like the other
//! minimal stand-ins under `vendor/`: fixed seed, no per-map state,
//! identical behaviour in every process.
//!
//! Do not use it for attacker-controlled keys; simulation ids are not.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's 2^64/φ multiplier, the FxHash mixing constant.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one u64 folded over each written word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Stateless builder: every hasher starts from the same fixed seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the deterministic integer hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the deterministic integer hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No RandomState: two independently built maps agree — the
        // property the cross-process determinism test relies on.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abcdefghij"), hash_of(&"abcdefghij"));
    }

    #[test]
    fn spreads_dense_ids() {
        // Dense ids (the simulator's tids/oids) must not collide in bulk.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_tail_is_mixed() {
        // Unaligned tails must still affect the hash.
        let mut a = FxHasher::default();
        a.write(b"0123456789");
        let mut b = FxHasher::default();
        b.write(b"0123456788");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
