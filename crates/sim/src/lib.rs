#![warn(missing_docs)]

//! Discrete-event simulation kernel for the `elog` project.
//!
//! This crate rebuilds the substrate of the SIGMOD '93 ephemeral-logging
//! evaluation: an event-driven simulator with a microsecond virtual clock, a
//! stable priority event queue with cancellation, deterministic seeded random
//! streams, and statistics accumulators (counters, time-weighted gauges,
//! histograms).
//!
//! The kernel is deliberately single-threaded: runs are deterministic for a
//! given seed, which the experiment harness relies on when searching for
//! minimum disk-space configurations.
//!
//! # Example
//!
//! ```
//! use elog_sim::{Engine, EventQueue, SimTime, Simulate};
//!
//! struct Countdown(u32);
//!
//! impl Simulate for Countdown {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
//!         if self.0 > 0 {
//!             self.0 -= 1;
//!             q.schedule(now + SimTime::from_millis(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Countdown(3));
//! engine.queue_mut().schedule(SimTime::ZERO, ());
//! let end = engine.run_to_completion();
//! assert_eq!(end, SimTime::from_millis(30));
//! ```

pub mod engine;
pub mod event;
pub mod fxhash;
pub mod perfstats;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Simulate};
pub use event::{EventQueue, EventToken};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use perfstats::{CountingAlloc, PerfStats, QueueStats, RecoveryStats, SearchStats};
pub use rng::SimRng;
pub use stats::{Counter, Histogram, MaxGauge, MeanAccumulator, TimeWeighted};
pub use time::SimTime;
pub use trace::{TraceRing, TraceSink};
