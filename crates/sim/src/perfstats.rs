//! Hot-path performance counters.
//!
//! The simulator's worth is measured in delivered events per wall-clock
//! second, so the kernel exposes the raw material for that number here:
//! per-queue counters ([`QueueStats`], snapshotted via
//! [`crate::EventQueue::perf`]), a per-run aggregate ([`PerfStats`]) the
//! harness assembles around a timed run, and an optional counting
//! allocator ([`CountingAlloc`]) the binaries install to price the
//! allocation traffic of the commit path.
//!
//! Everything here is observational: no counter feeds back into the
//! simulation, so enabling or ignoring them cannot change results.

use std::alloc::{GlobalAlloc, Layout};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lifetime counters of one [`crate::EventQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// `schedule` calls.
    pub scheduled: u64,
    /// Effective `cancel` calls.
    pub cancelled: u64,
    /// Dead heap entries discarded (lazily on pop or by compaction).
    pub tombstones_discarded: u64,
    /// Compaction passes.
    pub compactions: u64,
    /// Greatest physical heap length (live + tombstones).
    pub heap_peak: usize,
    /// Drive-shard count of the queue backend (1 = monolithic heap, ≥ 2 =
    /// the sharded spine/lane backend; see `EventQueue::configure_shards`).
    pub shards: u32,
    /// Cross-shard clock handoffs: times the delivery frontier moved from
    /// one drive shard's completion bank to another's (each is one barrier
    /// synchronisation between shard clocks). 0 on the heap backend.
    pub sync_rounds: u64,
    /// Shard-local completion events exchanged through the coordinator
    /// spine (each lane pop hands one cross-shard effect — a flush
    /// completion — back to the global order). 0 on the heap backend.
    pub effects_exchanged: u64,
}

impl QueueStats {
    /// Fraction of scheduled events that died as tombstones, in `[0, 1]`.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.tombstones_discarded as f64 / self.scheduled as f64
        }
    }

    /// Accumulates another queue's counters (heap peak and shard count
    /// take the max).
    pub fn merge(&mut self, other: &QueueStats) {
        self.scheduled += other.scheduled;
        self.cancelled += other.cancelled;
        self.tombstones_discarded += other.tombstones_discarded;
        self.compactions += other.compactions;
        self.heap_peak = self.heap_peak.max(other.heap_peak);
        self.shards = self.shards.max(other.shards);
        self.sync_rounds += other.sync_rounds;
        self.effects_exchanged += other.effects_exchanged;
    }
}

/// Counters of one minimum-space search: how many geometry probes ran,
/// how many were served by trace replay or the verdict memo, and how much
/// simulation the probes cost. Carried inside [`PerfStats`] so a measured
/// run can account for the search that produced its geometry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Probe simulations actually executed.
    pub sim_probes: u64,
    /// Of those, probes that replayed a captured workload trace instead
    /// of re-running the RNG-driven driver.
    pub replay_probes: u64,
    /// Probe verdicts answered by the monotonicity memo (no simulation).
    pub memo_hits: u64,
    /// Events delivered across all probe simulations.
    pub probe_events: u64,
    /// Lattice points excluded by the search's pruning bound without a
    /// probe (skipped last-axis range, summed over all scan columns).
    /// Counts *anchor-bound* pruning only; verdicts answered by the
    /// analytic feasibility model are in [`SearchStats::analytic_rejections`]
    /// so the two mechanisms stay separately attributable.
    pub pruned_volume: u64,
    /// Probe verdicts answered by the analytic feasibility model: the
    /// geometry was certified hopeless from the trace's closed-form byte
    /// balance, so no simulation ran. Each is still counted in
    /// `sim_probes`/`replay_probes` (the verdict sequence — and hence every
    /// printed probe count — is identical to the probe-only search); only
    /// `probe_events` shrinks.
    pub analytic_rejections: u64,
    /// Executed probes that resumed from a mid-run snapshot instead of
    /// replaying from t = 0.
    pub resume_probes: u64,
    /// Events those resumed probes did *not* re-execute (the snapshot's
    /// already-delivered prefix, summed over all resumes).
    pub resume_saved_events: u64,
    /// Probe verdicts answered by a column's consumption certificate (one
    /// instrumented surviving probe certifies every smaller capacity of
    /// its column exactly). Counted in `sim_probes`/`replay_probes` like
    /// analytic rejections, so the verdict sequence — and every printed
    /// probe count — matches the probe-only search; only `probe_events`
    /// shrinks.
    pub cert_verdicts: u64,
    /// Speculative probes launched ahead of the bisection under
    /// `--probe-jobs`: full replays of capacities the next bisection steps
    /// *could* visit, run on worker probers whose own counters are
    /// discarded. Disjoint from every authoritative counter above — a
    /// speculative run is never a `sim_probes` probe; when the bisection
    /// later consumes its verdict, the authoritative probe is counted
    /// exactly as if it had simulated (so printed probe counts match the
    /// serial search).
    pub speculative_probes: u64,
    /// Speculative probes whose verdict the bisection never consumed
    /// (launched for a branch the verdict sequence did not take). Always
    /// `<= speculative_probes`; the difference is the harvest that paid
    /// for itself.
    pub speculative_wasted: u64,
    /// Probe verdicts answered by the persistent probe-verdict cache
    /// (`--probe-cache`): an exact on-disk verdict for this geometry under
    /// this workload fingerprint, so no simulation ran. Counted in
    /// `sim_probes` (and `replay_probes` when a trace was present) exactly
    /// like the probe it replaced, so printed probe counts match the
    /// uncached search; only `probe_events` shrinks.
    pub cache_hits: u64,
    /// Probes that consulted an enabled cache, found no entry, and fell
    /// through to live simulation. When a cache is enabled this equals the
    /// number of live probe executions — a fully warm rerun reports 0.
    pub cache_misses: u64,
    /// Verdicts the cache file seeded into the search before any probe ran
    /// (0 when `--probe-cache` is off or the file was cold/corrupt).
    pub cache_seeded: u64,
}

impl SearchStats {
    /// Fraction of executed probes that replayed a trace, in `[0, 1]`.
    pub fn replay_hit_rate(&self) -> f64 {
        if self.sim_probes == 0 {
            0.0
        } else {
            self.replay_probes as f64 / self.sim_probes as f64
        }
    }

    /// Fraction of probe verdicts answered by the memo, in `[0, 1]`.
    pub fn memo_hit_rate(&self) -> f64 {
        let verdicts = self.sim_probes + self.memo_hits;
        if verdicts == 0 {
            0.0
        } else {
            self.memo_hits as f64 / verdicts as f64
        }
    }

    /// Mean events per executed probe (0 when no probes ran).
    pub fn events_per_probe(&self) -> f64 {
        if self.sim_probes == 0 {
            0.0
        } else {
            self.probe_events as f64 / self.sim_probes as f64
        }
    }

    /// Fraction of executed probes that resumed from a snapshot, in
    /// `[0, 1]`.
    pub fn resume_hit_rate(&self) -> f64 {
        if self.sim_probes == 0 {
            0.0
        } else {
            self.resume_probes as f64 / self.sim_probes as f64
        }
    }

    /// Accumulates another search's counters.
    pub fn merge(&mut self, other: &SearchStats) {
        self.sim_probes += other.sim_probes;
        self.replay_probes += other.replay_probes;
        self.memo_hits += other.memo_hits;
        self.probe_events += other.probe_events;
        self.pruned_volume += other.pruned_volume;
        self.analytic_rejections += other.analytic_rejections;
        self.resume_probes += other.resume_probes;
        self.cert_verdicts += other.cert_verdicts;
        self.resume_saved_events += other.resume_saved_events;
        self.speculative_probes += other.speculative_probes;
        self.speculative_wasted += other.speculative_wasted;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_seeded += other.cache_seeded;
    }
}

/// Counters of one crash-recovery pass: what the byte-level scan read and
/// what the single-pass REDO rebuilt, with the wall clock of each phase.
/// The recovery bench assembles one per crash point; `merge` folds them
/// into the aggregate the regression gate compares.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Blocks the scan attempted to decode (decoded + corrupt).
    pub blocks: u64,
    /// Blocks that decoded cleanly.
    pub decoded_blocks: u64,
    /// Blocks the codec rejected (torn/corrupt).
    pub corrupt_blocks: u64,
    /// Records examined by the scan (before deduplication).
    pub records: u64,
    /// Log bytes the scan examined.
    pub bytes: u64,
    /// Objects whose version came from the log in the REDO pass.
    pub redone: u64,
    /// Objects in the reconstructed state (stable ∪ redone).
    pub recovered_objects: u64,
    /// Heap allocations across scan + redo (0 without a counting
    /// allocator installed).
    pub allocations: u64,
    /// Wall clock of the byte-level scan.
    pub scan_wall: Duration,
    /// Wall clock of the single-pass REDO.
    pub redo_wall: Duration,
}

impl RecoveryStats {
    /// Attempted blocks per scan second (0 for an unmeasured pass).
    pub fn scan_blocks_per_sec(&self) -> f64 {
        per_sec(self.blocks, self.scan_wall)
    }

    /// Scanned records per scan second (0 for an unmeasured pass).
    pub fn scan_records_per_sec(&self) -> f64 {
        per_sec(self.records, self.scan_wall)
    }

    /// Scanned records per REDO second (0 for an unmeasured pass).
    pub fn redo_records_per_sec(&self) -> f64 {
        per_sec(self.records, self.redo_wall)
    }

    /// Fraction of attempted blocks the codec rejected, in `[0, 1]`.
    pub fn corrupt_block_rate(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.corrupt_blocks as f64 / self.blocks as f64
        }
    }

    /// Heap allocations per scanned record (0 when nothing was scanned).
    pub fn allocations_per_record(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.allocations as f64 / self.records as f64
        }
    }

    /// Accumulates another pass (wall times add: serial composition).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.blocks += other.blocks;
        self.decoded_blocks += other.decoded_blocks;
        self.corrupt_blocks += other.corrupt_blocks;
        self.records += other.records;
        self.bytes += other.bytes;
        self.redone += other.redone;
        self.recovered_objects += other.recovered_objects;
        self.allocations += other.allocations;
        self.scan_wall += other.scan_wall;
        self.redo_wall += other.redo_wall;
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan {:.2} Mrec/s ({} blocks, {} corrupt), redo {:.2} Mrec/s \
             ({} records, {} objects)",
            self.scan_records_per_sec() / 1e6,
            self.blocks,
            self.corrupt_blocks,
            self.redo_records_per_sec() / 1e6,
            self.records,
            self.recovered_objects,
        )
    }
}

fn per_sec(count: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// One run's performance aggregate: how much simulation happened and how
/// fast the host executed it.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfStats {
    /// Events delivered by the engine.
    pub events: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Event-queue counters.
    pub queue: QueueStats,
    /// Min-space search counters, when a search produced this run's
    /// geometry (zero for plain measured runs).
    pub search: SearchStats,
}

impl PerfStats {
    /// Delivered events per wall-clock second (0 for an unmeasured run).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Accumulates another run (wall times add: serial composition).
    pub fn merge(&mut self, other: &PerfStats) {
        self.events += other.events;
        self.wall += other.wall;
        self.queue.merge(&other.queue);
        self.search.merge(&other.search);
    }
}

impl fmt::Display for PerfStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} Mev/s ({} events in {:.2?}; heap peak {}, {} compactions)",
            self.events_per_sec() / 1e6,
            self.events,
            self.wall,
            self.queue.heap_peak,
            self.queue.compactions,
        )?;
        if self.search.sim_probes > 0 {
            write!(
                f,
                " [{} probes, {:.0}% replayed, {:.0}% memoized]",
                self.search.sim_probes + self.search.memo_hits,
                self.search.replay_hit_rate() * 100.0,
                self.search.memo_hit_rate() * 100.0,
            )?;
        }
        Ok(())
    }
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations observed by the installed [`CountingAlloc`], if any.
///
/// Returns 0 when no counting allocator is installed (library users and
/// unit tests pay nothing).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A counting wrapper around any global allocator.
///
/// Binaries that want allocation counts in their perf reports install it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAlloc<std::alloc::System> = CountingAlloc(std::alloc::System);
/// ```
///
/// Cost: one relaxed atomic increment per allocation — negligible next to
/// the allocation itself, and zero for code that never allocates.
pub struct CountingAlloc<A>(pub A);

// SAFETY: defers entirely to the wrapped allocator; the counter has no
// effect on the returned memory.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        self.0.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        self.0.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        self.0.alloc_zeroed(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tombstone_ratio_handles_zero() {
        assert_eq!(QueueStats::default().tombstone_ratio(), 0.0);
        let q = QueueStats {
            scheduled: 100,
            tombstones_discarded: 25,
            ..QueueStats::default()
        };
        assert!((q.tombstone_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PerfStats {
            events: 10,
            wall: Duration::from_millis(5),
            queue: QueueStats {
                scheduled: 12,
                heap_peak: 7,
                ..QueueStats::default()
            },
            ..PerfStats::default()
        };
        let b = PerfStats {
            events: 30,
            wall: Duration::from_millis(15),
            queue: QueueStats {
                scheduled: 40,
                heap_peak: 3,
                ..QueueStats::default()
            },
            search: SearchStats {
                sim_probes: 4,
                replay_probes: 3,
                memo_hits: 1,
                probe_events: 900,
                pruned_volume: 11,
                analytic_rejections: 2,
                cert_verdicts: 5,
                resume_probes: 1,
                resume_saved_events: 300,
                speculative_probes: 6,
                speculative_wasted: 2,
                cache_hits: 7,
                cache_misses: 8,
                cache_seeded: 9,
            },
        };
        a.merge(&b);
        assert_eq!(a.events, 40);
        assert_eq!(a.wall, Duration::from_millis(20));
        assert_eq!(a.queue.scheduled, 52);
        assert_eq!(a.queue.heap_peak, 7);
        assert!((a.events_per_sec() - 2000.0).abs() < 1e-6);
        assert_eq!(a.search.sim_probes, 4);
        assert_eq!(a.search.pruned_volume, 11);
        assert_eq!(a.search.analytic_rejections, 2);
        assert_eq!(a.search.cert_verdicts, 5);
        assert_eq!(a.search.resume_probes, 1);
        assert_eq!(a.search.resume_saved_events, 300);
        assert!((a.search.replay_hit_rate() - 0.75).abs() < 1e-12);
        assert!((a.search.memo_hit_rate() - 0.2).abs() < 1e-12);
        assert!((a.search.events_per_probe() - 225.0).abs() < 1e-12);
        assert!((a.search.resume_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recovery_stats_rates_and_merge() {
        assert_eq!(RecoveryStats::default().scan_records_per_sec(), 0.0);
        assert_eq!(RecoveryStats::default().corrupt_block_rate(), 0.0);
        assert_eq!(RecoveryStats::default().allocations_per_record(), 0.0);
        let mut a = RecoveryStats {
            blocks: 100,
            decoded_blocks: 95,
            corrupt_blocks: 5,
            records: 2_000,
            allocations: 500,
            scan_wall: Duration::from_millis(10),
            redo_wall: Duration::from_millis(5),
            ..RecoveryStats::default()
        };
        assert!((a.scan_blocks_per_sec() - 10_000.0).abs() < 1e-6);
        assert!((a.scan_records_per_sec() - 200_000.0).abs() < 1e-6);
        assert!((a.redo_records_per_sec() - 400_000.0).abs() < 1e-6);
        assert!((a.corrupt_block_rate() - 0.05).abs() < 1e-12);
        assert!((a.allocations_per_record() - 0.25).abs() < 1e-12);
        let b = a;
        a.merge(&b);
        assert_eq!(a.blocks, 200);
        assert_eq!(a.records, 4_000);
        assert_eq!(a.scan_wall, Duration::from_millis(20));
        // Doubling counts and wall leaves the rates unchanged.
        assert!((a.scan_records_per_sec() - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_humane() {
        let s = PerfStats {
            events: 2_000_000,
            wall: Duration::from_secs(1),
            ..PerfStats::default()
        };
        let text = format!("{s}");
        assert!(text.contains("2.00 Mev/s"), "{text}");
    }
}
