//! Deterministic random streams.
//!
//! Every stochastic choice in the reproduction (transaction type draws, oid
//! picks) flows through [`SimRng`], a thin wrapper over a seeded
//! `rand::rngs::SmallRng`. Wrapping buys two things:
//!
//! * **stream splitting** — `SimRng::substream` derives an independent,
//!   deterministic child stream from a label, so adding a new consumer of
//!   randomness does not perturb existing draws (important when comparing FW
//!   and EL on *identical* workloads);
//! * a pinned-down API surface, so swapping the underlying generator is a
//!   one-line change.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream from a textual label.
    ///
    /// The derivation is a 64-bit FNV-1a hash of the label mixed into the
    /// parent seed, so `substream` is pure: the same parent seed and label
    /// always yield the same child, regardless of draw history.
    pub fn substream(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed ^ h.rotate_left(17))
    }

    /// Uniform draw in `[0, bound)`. Panics if `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Exponentially distributed draw with the given mean (inverse rate).
    ///
    /// Used by the Poisson-arrival extension of the workload generator.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.random_range(0..=i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_below(1_000_000), b.next_u64_below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.next_u64_below(u64::MAX) == b.next_u64_below(u64::MAX))
            .count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn substream_is_pure() {
        let parent = SimRng::new(7);
        let mut c1 = parent.substream("oids");
        let mut c2 = parent.substream("oids");
        assert_eq!(c1.next_u64_below(1 << 40), c2.next_u64_below(1 << 40));
        let mut other = parent.substream("mix");
        assert_ne!(c1.seed(), other.seed());
        let _ = other.next_f64();
    }

    #[test]
    fn substream_independent_of_draw_history() {
        let mut parent = SimRng::new(9);
        let before = parent.substream("x").seed();
        let _ = parent.next_f64();
        let after = parent.substream("x").seed();
        assert_eq!(before, after);
    }

    #[test]
    fn bounded_draws_respect_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(r.next_u64_below(17) < 17);
        }
    }

    #[test]
    fn unit_interval_draws() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = SimRng::new(5);
        let n = 200_000;
        let mean = 0.25;
        let total: f64 = (0..n).map(|_| r.next_exp(mean)).sum();
        let observed = total / n as f64;
        assert!((observed - mean).abs() < 0.01, "observed mean {observed}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(6);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
