//! Statistics accumulators.
//!
//! The paper's evaluation reports rates (block writes per second), peaks
//! (main-memory consumption) and means (distance between successively
//! flushed oids). These small accumulators compute each of those online, in
//! O(1) space, so instrumentation never perturbs a run.

use crate::time::SimTime;

/// A monotone event counter with a rate helper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Events per simulated second over `elapsed`.
    pub fn rate_per_sec(self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.0 as f64 / secs
        }
    }
}

/// Running arithmetic mean (and count) of a stream of samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanAccumulator {
    sum: f64,
    n: u64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Tracks the maximum of a time-varying quantity.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxGauge {
    current: u64,
    peak: u64,
    peak_at: SimTime,
}

impl MaxGauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value, updating the peak.
    pub fn set(&mut self, now: SimTime, v: u64) {
        self.current = v;
        if v > self.peak {
            self.peak = v;
            self.peak_at = now;
        }
    }

    /// Most recent value.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Greatest value ever set.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Time at which the peak was (first) reached.
    pub fn peak_at(&self) -> SimTime {
        self.peak_at
    }
}

/// Time-weighted average of a piecewise-constant quantity.
///
/// `update(now, v)` declares that the quantity has held its previous value
/// since the last update and is `v` from `now` on.
#[derive(Clone, Copy, Debug)]
pub struct TimeWeighted {
    last_value: f64,
    last_at: SimTime,
    weighted_sum: f64,
    origin: SimTime,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(SimTime::ZERO, 0.0)
    }
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial value `v0`.
    pub fn new(start: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_value: v0,
            last_at: start,
            weighted_sum: 0.0,
            origin: start,
        }
    }

    /// Records a change of value at time `now`.
    pub fn update(&mut self, now: SimTime, v: f64) {
        debug_assert!(now >= self.last_at, "time-weighted update out of order");
        let dt = now.saturating_sub(self.last_at).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_value = v;
        self.last_at = now;
    }

    /// Average over `[origin, now]`, extending the last value to `now`.
    pub fn average(&self, now: SimTime) -> f64 {
        let tail = now.saturating_sub(self.last_at).as_secs_f64();
        let span = now.saturating_sub(self.origin).as_secs_f64();
        if span == 0.0 {
            self.last_value
        } else {
            (self.weighted_sum + self.last_value * tail) / span
        }
    }

    /// Current (most recently set) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Fixed-boundary histogram with overflow bucket.
///
/// Used for commit-latency and flush-queue-depth distributions, where we
/// care about shape and tail percentiles rather than exact moments.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    /// A sample lands in the first bucket whose bound it does not exceed;
    /// larger samples land in the overflow bucket.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Evenly spaced bounds over `[0, hi]` with `n` buckets (plus overflow).
    pub fn linear(hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > 0.0);
        Self::new((1..=n).map(|i| hi * i as f64 / n as f64).collect())
    }

    /// Geometrically spaced bounds from `lo` to at least `hi` with
    /// `per_decade` buckets per factor of ten — constant *relative*
    /// resolution, so one histogram resolves both millisecond commit
    /// latencies and multi-second stragglers. The last bound is the first
    /// point of the geometric ladder at or above `hi`.
    pub fn geometric(lo: f64, hi: f64, per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && per_decade > 0);
        let step = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = vec![lo];
        while *bounds.last().expect("non-empty") < hi {
            let next = bounds.last().expect("non-empty") * step;
            bounds.push(next);
        }
        Self::new(bounds)
    }

    /// Adds every sample of `other` into `self` — the aggregation step when
    /// per-source histograms (e.g. per-tenant latency) roll up into one
    /// distribution.
    ///
    /// # Panics
    /// Panics when the two histograms have different bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b < x);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest sample seen, if any.
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample seen, if any.
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max)
    }

    /// Approximate quantile (0.0..=1.0) by bucket upper bound.
    ///
    /// Returns `None` when empty. The overflow bucket reports the true max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Raw bucket counts (last entry is the overflow bucket) — a snapshot
    /// clients keep to later take windowed readings via
    /// [`Histogram::quantile_since`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile over only the samples recorded since
    /// `baseline` — an earlier [`Histogram::counts`] snapshot of this same
    /// histogram. This is the sliding-window reading the adaptive
    /// controller uses: cumulative quantiles average over the whole run
    /// and react too slowly to workload phase shifts.
    ///
    /// Returns `None` when no samples landed since the snapshot. Like
    /// [`Histogram::quantile`] the result is a bucket upper bound, except
    /// the overflow bucket, which reports the *cumulative* max (the
    /// per-window max is not tracked) — a conservative overestimate.
    ///
    /// # Panics
    /// Panics when `baseline` has the wrong length or any count ran
    /// backwards (it came from a different histogram).
    pub fn quantile_since(&self, baseline: &[u64], q: f64) -> Option<f64> {
        assert_eq!(
            baseline.len(),
            self.counts.len(),
            "baseline snapshot from a different histogram shape"
        );
        let delta = |i: usize| {
            let (c, b) = (self.counts[i], baseline[i]);
            assert!(
                c >= b,
                "bucket {i} ran backwards: baseline from another histogram"
            );
            c - b
        };
        let total: u64 = (0..self.counts.len()).map(delta).sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for i in 0..self.counts.len() {
            seen += delta(i);
            if seen >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// (upper-bound, count) pairs including the overflow bucket (bound =
    /// +inf).
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(500);
        c.incr();
        assert_eq!(c.get(), 501);
        assert!((c.rate_per_sec(SimTime::from_secs(100)) - 5.01).abs() < 1e-9);
        assert_eq!(Counter::new().rate_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), None);
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.record(x);
        }
        assert_eq!(m.mean(), Some(2.5));
        assert_eq!(m.count(), 4);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn max_gauge_tracks_peak_and_time() {
        let mut g = MaxGauge::new();
        g.set(SimTime::from_secs(1), 10);
        g.set(SimTime::from_secs(2), 30);
        g.set(SimTime::from_secs(3), 20);
        assert_eq!(g.current(), 20);
        assert_eq!(g.peak(), 30);
        assert_eq!(g.peak_at(), SimTime::from_secs(2));
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 100.0); // 0 for 10 s
        tw.update(SimTime::from_secs(20), 0.0); // 100 for 10 s
                                                // over 20 s: (0*10 + 100*10)/20 = 50
        assert!((tw.average(SimTime::from_secs(20)) - 50.0).abs() < 1e-9);
        // extend 20 more seconds at 0: (1000)/40 = 25
        assert!((tw.average(SimTime::from_secs(40)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_degenerate_span() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(tw.average(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn histogram_windowed_quantile() {
        let mut h = Histogram::linear(10.0, 5); // bounds 2,4,6,8,10
        for x in [1.0, 1.5, 1.8] {
            h.record(x);
        }
        // Window opens: everything so far lands in the first bucket.
        let snap = h.counts().to_vec();
        assert_eq!(h.quantile_since(&snap, 0.99), None, "empty window");
        // New samples in the window are all large; the cumulative
        // quantile still reports small, the windowed one must not.
        for x in [7.0, 7.5, 9.0, 9.5] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.25), Some(2.0), "cumulative p25 is low");
        assert_eq!(h.quantile_since(&snap, 0.25), Some(8.0));
        assert_eq!(h.quantile_since(&snap, 0.5), Some(8.0));
        assert_eq!(h.quantile_since(&snap, 1.0), Some(10.0));
        // Overflow in the window reports the cumulative max.
        h.record(55.0);
        assert_eq!(h.quantile_since(&snap, 1.0), Some(55.0));
        // A fresh snapshot empties the window again.
        let snap2 = h.counts().to_vec();
        assert_eq!(h.quantile_since(&snap2, 0.5), None);
    }

    #[test]
    #[should_panic]
    fn histogram_windowed_quantile_rejects_foreign_baseline() {
        let mut h = Histogram::linear(10.0, 5);
        h.record(1.0);
        let _ = h.quantile_since(&[0, 0], 0.5);
    }

    #[test]
    fn histogram_basic_shape() {
        let mut h = Histogram::linear(10.0, 5); // bounds 2,4,6,8,10
        for x in [1.0, 3.0, 3.5, 9.0, 42.0] {
            h.record(x);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (2.0, 1));
        assert_eq!(buckets[1], (4.0, 2));
        assert_eq!(buckets[4], (10.0, 1));
        assert_eq!(buckets[5].1, 1); // overflow
        assert_eq!(h.total(), 5);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(42.0));
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::linear(100.0, 100);
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(Histogram::linear(1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn histogram_boundary_sample_goes_low() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1.0); // exactly on a bound → that bucket
        assert_eq!(h.buckets().next().unwrap().1, 1);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn histogram_geometric_ladder() {
        let h = Histogram::geometric(1.0, 1000.0, 1); // 1, 10, 100, 1000
        let bounds: Vec<f64> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds.len(), 5); // 4 bounds + overflow
        assert!((bounds[0] - 1.0).abs() < 1e-9);
        assert!((bounds[3] - 1000.0).abs() < 1e-6);
        assert_eq!(bounds[4], f64::INFINITY);
        // Covers hi even when the ladder overshoots it.
        let h2 = Histogram::geometric(1.0, 500.0, 1);
        let last = h2.buckets().map(|(b, _)| b).nth(3).unwrap();
        assert!(last >= 500.0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::linear(10.0, 5);
        let mut b = Histogram::linear(10.0, 5);
        for x in [1.0, 3.0] {
            a.record(x);
        }
        for x in [7.0, 9.0, 42.0] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(42.0));
        assert_eq!(a.quantile(1.0), Some(42.0));
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::linear(10.0, 5));
        assert_eq!(a.total(), 5);
        assert_eq!(a.min(), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::linear(10.0, 5);
        a.merge(&Histogram::linear(10.0, 4));
    }
}
