//! Virtual time for the simulator.
//!
//! Time is a monotone count of microseconds since the start of a run. A
//! microsecond granularity is fine enough for every latency the paper uses
//! (the smallest is the 1 ms gap between a transaction's last data record and
//! its COMMIT record) while keeping arithmetic in plain `u64`: 2^64 µs is
//! over half a million years of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in microseconds.
///
/// `SimTime` doubles as a duration type: the event-driven simulator only ever
/// adds spans to points and subtracts points from points, so a single
/// saturating newtype keeps the API small. All arithmetic is saturating so an
/// accidental underflow in a policy computation cannot wrap into the far
/// future and wedge a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs a time from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs a time from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Constructs a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Constructs a time from fractional seconds, rounding to the nearest
    /// microsecond. Panics in debug builds on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference, as a span.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// True when this is the `MAX` sentinel.
    #[inline]
    pub const fn is_never(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {self:?} - {rhs:?}");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Human-oriented rendering with an adaptive unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us == u64::MAX {
            write!(f, "never")
        } else if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1e3)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_millis(15);
        let b = SimTime::from_millis(25);
        assert_eq!((a + b).as_millis(), 40);
        assert_eq!((b - a).as_millis(), 10);
        assert_eq!((a * 4).as_millis(), 60);
        assert_eq!((b / 5).as_millis(), 5);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn sub_underflow_panics_in_debug() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimTime::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimTime::from_secs(7).to_string(), "7.000s");
        assert_eq!(SimTime::MAX.to_string(), "never");
    }

    #[test]
    fn fractional_seconds_roundtrip() {
        let t = SimTime::from_secs_f64(123.456789);
        assert!((t.as_secs_f64() - 123.456789).abs() < 1e-6);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_secs).sum();
        assert_eq!(total, SimTime::from_secs(10));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert!(SimTime::MAX.is_never());
        assert!(!SimTime::ZERO.is_never());
    }
}
