//! Lightweight execution tracing.
//!
//! A [`TraceRing`] keeps the last N trace lines of a run in a fixed-size
//! ring. It exists for debugging minimum-space searches: when a probe run
//! kills a transaction, the tail of the trace shows exactly which generation
//! ran out of space and why, without paying for unbounded logging on the
//! thousands of probe runs that behave.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Destination for trace lines.
pub trait TraceSink {
    /// Records one line at virtual time `now`. Implementations should be
    /// cheap when tracing is disabled.
    fn emit(&mut self, now: SimTime, line: &str);

    /// True when the sink will actually keep what is emitted. Callers can
    /// skip formatting work when this is false.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything. The default for experiment sweeps.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _now: SimTime, _line: &str) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Fixed-capacity ring of recent trace lines.
#[derive(Clone, Debug)]
pub struct TraceRing {
    lines: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            lines: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Lines currently retained, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Number of lines evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained tail as one string (for failure messages).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... ({} earlier lines dropped)", self.dropped);
        }
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }
}

impl TraceSink for TraceRing {
    fn emit(&mut self, now: SimTime, line: &str) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(format!("[{now}] {line}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.emit(SimTime::ZERO, "ignored");
    }

    #[test]
    fn ring_keeps_most_recent_lines() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.emit(SimTime::from_secs(i), &format!("line{i}"));
        }
        let lines: Vec<_> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("line2"));
        assert!(lines[2].contains("line4"));
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn render_mentions_drops() {
        let mut r = TraceRing::new(1);
        r.emit(SimTime::ZERO, "a");
        r.emit(SimTime::ZERO, "b");
        let s = r.render();
        assert!(s.contains("1 earlier lines dropped"));
        assert!(s.contains('b'));
        assert!(!s.contains("] a"));
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = TraceRing::new(0);
        r.emit(SimTime::ZERO, "x");
        assert_eq!(r.lines().count(), 0);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn lines_are_timestamped() {
        let mut r = TraceRing::new(4);
        r.emit(SimTime::from_millis(1500), "hello");
        assert_eq!(r.lines().next().unwrap(), "[1.500s] hello");
    }
}
