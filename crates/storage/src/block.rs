//! The typed image of one log block.
//!
//! A block is the unit of log I/O (§2.2): head and tail pointers move in
//! block-sized quanta, and a cell records only the *block* its record lives
//! in, not a byte offset. [`Block`] is the in-memory (and simulated
//! on-disk) representation: the records it contains plus enough header
//! metadata for a recovery scan to order blocks and detect staleness.

use crate::codec;
use elog_model::{GenId, LogRecord};
use elog_sim::SimTime;

/// Coarse address of a block: which generation, and the monotone sequence
/// number of the block within that generation's write order.
///
/// The *slot* a block occupies on disk is `seq % capacity`; keeping the
/// undecimated sequence number makes head/tail arithmetic overflow-free and
/// gives recovery a total order of writes within a generation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockAddr {
    /// Owning generation.
    pub gen: GenId,
    /// Monotone write index within the generation.
    pub seq: u64,
}

impl BlockAddr {
    /// Disk slot this block occupies in a ring of `capacity` blocks.
    #[inline]
    pub fn slot(self, capacity: u64) -> u64 {
        debug_assert!(capacity > 0);
        self.seq % capacity
    }
}

/// One log block: header metadata plus the records packed into it.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Where the block lives.
    pub addr: BlockAddr,
    /// Virtual time at which the block's device write *completed* (i.e. the
    /// moment its contents became durable).
    pub written_at: SimTime,
    /// Records packed into the payload area, in append order.
    pub records: Vec<LogRecord>,
    /// Sum of the records' accounting sizes, maintained by [`Block::push`].
    pub payload_used: u32,
}

impl Block {
    /// An empty block at `addr` (not yet durable).
    pub fn new(addr: BlockAddr) -> Self {
        Self::recycled(addr, Vec::new())
    }

    /// An empty block at `addr` reusing a retired block's record storage,
    /// so steady-state buffer turnover allocates nothing.
    pub fn recycled(addr: BlockAddr, mut records: Vec<LogRecord>) -> Self {
        records.clear();
        Block {
            addr,
            written_at: SimTime::MAX,
            records,
            payload_used: 0,
        }
    }

    /// Appends a record, tracking payload use.
    ///
    /// The caller (the log manager's buffer logic) is responsible for
    /// checking capacity before pushing; this method only asserts it in
    /// debug builds so corrupted packing fails loudly in tests.
    pub fn push(&mut self, r: LogRecord, payload_capacity: u32) {
        self.payload_used += r.size();
        debug_assert!(
            self.payload_used <= payload_capacity,
            "block over-packed: {} > {payload_capacity}",
            self.payload_used
        );
        self.records.push(r);
    }

    /// Remaining payload capacity given a `payload_capacity`-byte area.
    pub fn free_bytes(&self, payload_capacity: u32) -> u32 {
        payload_capacity.saturating_sub(self.payload_used)
    }

    /// True when no records are packed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records packed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Serialises to the wire format (see [`codec`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::encode_block(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elog_model::{DataRecord, Oid, Tid};

    fn rec(size: u32) -> LogRecord {
        LogRecord::Data(DataRecord {
            tid: Tid(1),
            oid: Oid(2),
            seq: 1,
            ts: SimTime::ZERO,
            size,
        })
    }

    #[test]
    fn addr_slot_wraps() {
        let a = BlockAddr {
            gen: GenId(0),
            seq: 37,
        };
        assert_eq!(a.slot(16), 5);
        assert_eq!(
            BlockAddr {
                gen: GenId(0),
                seq: 15
            }
            .slot(16),
            15
        );
    }

    #[test]
    fn push_tracks_payload() {
        let mut b = Block::new(BlockAddr {
            gen: GenId(0),
            seq: 0,
        });
        assert!(b.is_empty());
        b.push(rec(100), 2000);
        b.push(rec(150), 2000);
        assert_eq!(b.payload_used, 250);
        assert_eq!(b.free_bytes(2000), 1750);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn overpacking_asserts_in_debug() {
        let mut b = Block::new(BlockAddr {
            gen: GenId(0),
            seq: 0,
        });
        b.push(rec(1500), 2000);
        b.push(rec(1500), 2000);
    }

    #[test]
    fn fresh_block_is_not_durable() {
        let b = Block::new(BlockAddr {
            gen: GenId(1),
            seq: 9,
        });
        assert!(b.written_at.is_never());
    }
}
