//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Implemented in-tree rather than pulled in as a crate: the project's
//! dependency budget is deliberately small, and forty lines of table-driven
//! CRC are easier to audit than a new transitive tree. The block codec uses
//! it to detect torn or corrupted blocks during recovery scans.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental form: feeds `data` into a running (pre-inverted) state.
///
/// Start from `0xFFFF_FFFF`, feed chunks, and finish by XOR-ing with
/// `0xFFFF_FFFF`; `crc32` is the one-shot convenience wrapper.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"ephemeral logging, sigmod 1993";
        let oneshot = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 2048];
        data[100] = 0xAA;
        let good = crc32(&data);
        for bit in [0usize, 777, 2047 * 8 + 7] {
            let mut bad = data.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&bad), good, "flip at bit {bit} undetected");
        }
    }

    #[test]
    fn detects_transpositions() {
        let a = crc32(b"ab");
        let b = crc32(b"ba");
        assert_ne!(a, b);
    }
}
