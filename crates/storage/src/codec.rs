//! Wire format for blocks and records.
//!
//! The simulation itself packs blocks by *accounting* size (the paper's
//! 100-byte data records and 8-byte tx records). This codec is the real,
//! self-describing byte format used when a log image is serialised — for
//! the recovery-from-bytes path and the archive example. A data record's
//! content bytes are the deterministic [`synth_payload`] of its identity,
//! sized so that header + payload equals the accounting size whenever the
//! accounting size is large enough (it always is for the paper's 100-byte
//! records); tx records need 21 wire bytes, more than the paper's 8
//! accounting bytes, which is exactly why the two notions are kept distinct
//! (DESIGN.md §5).
//!
//! Layout (little-endian):
//!
//! ```text
//! block  := magic u32 | version u16 | gen u8 | pad u8 | seq u64
//!         | written_at u64 | record_count u32 | payload_used u32
//!         | body_len u32 | body_crc u32 | pad [u8;8]        -- 48 bytes
//!         | body
//! data   := 0x00 | tid u64 | oid u64 | seq u32 | ts u64 | size u32
//!         | payload_len u16 | payload [u8; payload_len]     -- 35+len
//! tx     := mark u8 (1|2|3) | tid u64 | ts u64 | size u32   -- 21 bytes
//! ```

use crate::block::{Block, BlockAddr};
use crate::checksum::crc32;
use bytes::{Buf, BufMut};
use elog_model::{
    payload_matches, synth_payload_extend, DataRecord, GenId, LogRecord, Oid, Tid, TxMark, TxRecord,
};
use elog_sim::SimTime;
use std::fmt;

/// `"ELOG"` in ASCII.
const MAGIC: u32 = 0x454C_4F47;
const VERSION: u16 = 1;
/// Fixed header size; mirrors the paper's 48 reserved bytes per block.
pub const BLOCK_HEADER_BYTES: usize = 48;
/// Wire overhead of a data record before its payload.
pub const DATA_RECORD_HEADER_BYTES: usize = 35;
/// Wire size of a tx record.
pub const TX_RECORD_BYTES: usize = 21;

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than a header or declared body.
    Truncated,
    /// Bad magic or unsupported version.
    BadHeader,
    /// CRC mismatch: torn or corrupted block.
    BadChecksum {
        /// CRC stored in the header.
        expected: u32,
        /// CRC computed over the body.
        actual: u32,
    },
    /// Unknown record tag.
    BadRecordTag(u8),
    /// Data-record payload does not match its identity (content rot).
    BadPayload,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "block truncated"),
            CodecError::BadHeader => write!(f, "bad block magic/version"),
            CodecError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#010x}, body {actual:#010x}"
                )
            }
            CodecError::BadRecordTag(t) => write!(f, "unknown record tag {t:#04x}"),
            CodecError::BadPayload => write!(f, "payload does not match record identity"),
        }
    }
}

impl std::error::Error for CodecError {}

fn encode_record(out: &mut Vec<u8>, r: &LogRecord) {
    match r {
        LogRecord::Data(d) => {
            out.put_u8(0);
            out.put_u64_le(d.tid.get());
            out.put_u64_le(d.oid.get());
            out.put_u32_le(d.seq);
            out.put_u64_le(d.ts.as_micros());
            out.put_u32_le(d.size);
            let payload_len = (d.size as usize).saturating_sub(DATA_RECORD_HEADER_BYTES);
            out.put_u16_le(payload_len as u16);
            // Stream the payload straight into the output buffer: no
            // per-record temporary.
            synth_payload_extend(d.oid, d.tid, d.seq, payload_len, out);
        }
        LogRecord::Tx(t) => {
            out.put_u8(t.mark.tag());
            out.put_u64_le(t.tid.get());
            out.put_u64_le(t.ts.as_micros());
            out.put_u32_le(t.size);
        }
    }
}

fn decode_record(buf: &mut &[u8]) -> Result<LogRecord, CodecError> {
    if buf.is_empty() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        0 => {
            if buf.remaining() < DATA_RECORD_HEADER_BYTES - 1 {
                return Err(CodecError::Truncated);
            }
            let tid = Tid(buf.get_u64_le());
            let oid = Oid(buf.get_u64_le());
            let seq = buf.get_u32_le();
            let ts = SimTime::from_micros(buf.get_u64_le());
            let size = buf.get_u32_le();
            let payload_len = buf.get_u16_le() as usize;
            if buf.remaining() < payload_len {
                return Err(CodecError::Truncated);
            }
            let payload = &buf[..payload_len];
            // Streaming compare: no expected-payload temporary.
            if !payload_matches(oid, tid, seq, payload) {
                return Err(CodecError::BadPayload);
            }
            buf.advance(payload_len);
            Ok(LogRecord::Data(DataRecord {
                tid,
                oid,
                seq,
                ts,
                size,
            }))
        }
        t => {
            let mark = TxMark::from_tag(t).ok_or(CodecError::BadRecordTag(t))?;
            if buf.remaining() < TX_RECORD_BYTES - 1 {
                return Err(CodecError::Truncated);
            }
            let tid = Tid(buf.get_u64_le());
            let ts = SimTime::from_micros(buf.get_u64_le());
            let size = buf.get_u32_le();
            Ok(LogRecord::Tx(TxRecord {
                tid,
                mark,
                ts,
                size,
            }))
        }
    }
}

/// Serialises a block: 48-byte checksummed header plus encoded records.
pub fn encode_block(b: &Block) -> Vec<u8> {
    let mut body = Vec::with_capacity(2048);
    for r in &b.records {
        encode_record(&mut body, r);
    }
    let mut out = Vec::with_capacity(BLOCK_HEADER_BYTES + body.len());
    out.put_u32_le(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u8(b.addr.gen.0);
    out.put_u8(0);
    out.put_u64_le(b.addr.seq);
    out.put_u64_le(b.written_at.as_micros());
    out.put_u32_le(b.records.len() as u32);
    out.put_u32_le(b.payload_used);
    out.put_u32_le(body.len() as u32);
    out.put_u32_le(crc32(&body));
    out.extend_from_slice(&[0u8; 8]);
    debug_assert_eq!(out.len(), BLOCK_HEADER_BYTES);
    out.extend_from_slice(&body);
    out
}

/// Serialises every block of a multi-generation log surface through the
/// byte-level codec, flattened in `(generation, write order)` — the crash
/// image a byte-level recovery scan ingests. The grouping into
/// generations carries no information the scan needs (block headers name
/// their generation), so a flat vector is the natural snapshot shape.
pub fn encode_surface(surface: &[Vec<Block>]) -> Vec<Vec<u8>> {
    surface
        .iter()
        .flat_map(|gen_blocks| gen_blocks.iter().map(encode_block))
        .collect()
}

/// Total byte length of an encoded surface (what a real crash scan would
/// read off the device).
pub fn surface_bytes(encoded: &[Vec<u8>]) -> u64 {
    encoded.iter().map(|b| b.len() as u64).sum()
}

/// Parses and validates a serialised block.
pub fn decode_block(mut buf: &[u8]) -> Result<Block, CodecError> {
    if buf.len() < BLOCK_HEADER_BYTES {
        return Err(CodecError::Truncated);
    }
    let magic = buf.get_u32_le();
    let version = buf.get_u16_le();
    if magic != MAGIC || version != VERSION {
        return Err(CodecError::BadHeader);
    }
    let gen = GenId(buf.get_u8());
    let _pad = buf.get_u8();
    let seq = buf.get_u64_le();
    let written_at = SimTime::from_micros(buf.get_u64_le());
    let record_count = buf.get_u32_le() as usize;
    let payload_used = buf.get_u32_le();
    let body_len = buf.get_u32_le() as usize;
    let expected_crc = buf.get_u32_le();
    buf.advance(8); // padding
    if buf.len() < body_len {
        return Err(CodecError::Truncated);
    }
    let body = &buf[..body_len];
    let actual_crc = crc32(body);
    if actual_crc != expected_crc {
        return Err(CodecError::BadChecksum {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    let mut cursor = body;
    let mut records = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        records.push(decode_record(&mut cursor)?);
    }
    if !cursor.is_empty() {
        return Err(CodecError::Truncated); // trailing garbage inside body
    }
    Ok(Block {
        addr: BlockAddr { gen, seq },
        written_at,
        records,
        payload_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let mut b = Block::new(BlockAddr {
            gen: GenId(1),
            seq: 77,
        });
        b.written_at = SimTime::from_millis(321);
        b.push(
            LogRecord::Tx(TxRecord {
                tid: Tid(5),
                mark: TxMark::Begin,
                ts: SimTime::from_millis(300),
                size: 8,
            }),
            2000,
        );
        b.push(
            LogRecord::Data(DataRecord {
                tid: Tid(5),
                oid: Oid(123_456),
                seq: 1,
                ts: SimTime::from_millis(310),
                size: 100,
            }),
            2000,
        );
        b.push(
            LogRecord::Tx(TxRecord {
                tid: Tid(5),
                mark: TxMark::Commit,
                ts: SimTime::from_millis(320),
                size: 8,
            }),
            2000,
        );
        b
    }

    #[test]
    fn roundtrip() {
        let b = sample_block();
        let bytes = encode_block(&b);
        let back = decode_block(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn header_is_48_bytes_and_data_payload_fills_accounting_size() {
        let b = sample_block();
        let bytes = encode_block(&b);
        // 48 header + 21 tx + (35 + 65) data + 21 tx
        assert_eq!(bytes.len(), 48 + 21 + 100 + 21);
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut b = Block::new(BlockAddr {
            gen: GenId(0),
            seq: 0,
        });
        b.written_at = SimTime::ZERO;
        let back = decode_block(&encode_block(&b)).unwrap();
        assert!(back.records.is_empty());
        assert_eq!(back.payload_used, 0);
    }

    #[test]
    fn detects_corruption_anywhere_in_body() {
        let bytes = encode_block(&sample_block());
        for i in (BLOCK_HEADER_BYTES..bytes.len()).step_by(17) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode_block(&bad) {
                Err(CodecError::BadChecksum { .. }) => {}
                other => panic!("byte {i}: expected checksum error, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_bad_magic_and_truncation() {
        let bytes = encode_block(&sample_block());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(decode_block(&bad), Err(CodecError::BadHeader));

        assert_eq!(decode_block(&bytes[..10]), Err(CodecError::Truncated));
        assert_eq!(
            decode_block(&bytes[..bytes.len() - 1]),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn detects_forged_payload() {
        let mut bytes = encode_block(&sample_block());
        // Flip a payload byte AND fix up the CRC so only the content check
        // can catch it.
        let n = bytes.len();
        bytes[n - 30] ^= 0x01;
        let body_crc = crc32(&bytes[BLOCK_HEADER_BYTES..]);
        bytes[36..40].copy_from_slice(&body_crc.to_le_bytes());
        // Tampering lands either in the data payload (BadPayload) or in a
        // trailing tx record's fields (which decode but differ) — here the
        // offset targets the data payload.
        assert_eq!(decode_block(&bytes), Err(CodecError::BadPayload));
    }

    #[test]
    fn rejects_unknown_record_tag() {
        let mut b = Block::new(BlockAddr {
            gen: GenId(0),
            seq: 1,
        });
        b.written_at = SimTime::ZERO;
        b.push(
            LogRecord::Tx(TxRecord {
                tid: Tid(1),
                mark: TxMark::Abort,
                ts: SimTime::ZERO,
                size: 8,
            }),
            2000,
        );
        let mut bytes = encode_block(&b);
        bytes[BLOCK_HEADER_BYTES] = 0x77; // stomp the tag
        let body_crc = crc32(&bytes[BLOCK_HEADER_BYTES..]);
        bytes[36..40].copy_from_slice(&body_crc.to_le_bytes());
        assert_eq!(decode_block(&bytes), Err(CodecError::BadRecordTag(0x77)));
    }

    #[test]
    fn block_to_bytes_convenience() {
        let b = sample_block();
        assert_eq!(b.to_bytes(), encode_block(&b));
    }

    #[test]
    fn encode_surface_flattens_generations_in_order() {
        let b0 = sample_block();
        let mut b1 = Block::new(BlockAddr {
            gen: GenId(1),
            seq: 3,
        });
        b1.written_at = SimTime::from_millis(400);
        let surface = vec![vec![b0.clone()], vec![b1.clone()], vec![]];
        let encoded = encode_surface(&surface);
        assert_eq!(encoded.len(), 2);
        assert_eq!(decode_block(&encoded[0]).unwrap(), b0);
        assert_eq!(decode_block(&encoded[1]).unwrap(), b1);
        assert_eq!(
            surface_bytes(&encoded),
            (encoded[0].len() + encoded[1].len()) as u64
        );
    }
}
