//! The simulated log device.
//!
//! The paper models the log disk with a single conservative constant: a
//! buffer transfer takes τ_DiskWrite = 15 ms (§3), and multiple buffers per
//! generation let transfers overlap record arrival. [`LogDevice`] issues
//! writes, predicts their completion times, and accounts bandwidth — the
//! "disk bandwidth (to only the log)" reported in Figure 5 is exactly
//! `writes / runtime` from these counters.
//!
//! The device imposes no queueing of its own: concurrency is bounded
//! upstream by the log manager's per-generation buffer pool (4 buffers in
//! the paper), which is the paper's own modelling choice.

use elog_sim::{Counter, SimTime};

/// Per-generation write accounting.
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Completed block writes.
    pub writes: Counter,
    /// Payload bytes carried by completed writes (accounting sizes).
    pub payload_bytes: Counter,
    /// Writes currently in flight.
    pub in_flight: u32,
    /// Peak simultaneous writes (validates the buffer-count assumption).
    pub peak_in_flight: u32,
}

/// Simulated log disk shared by all generations.
#[derive(Clone, Debug)]
pub struct LogDevice {
    latency: SimTime,
    per_gen: Vec<DeviceStats>,
}

impl LogDevice {
    /// Creates a device with fixed per-buffer `latency` serving
    /// `generations` independent block streams.
    pub fn new(latency: SimTime, generations: usize) -> Self {
        LogDevice {
            latency,
            per_gen: vec![DeviceStats::default(); generations],
        }
    }

    /// The fixed transfer latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Begins a buffer write for generation `gen` carrying `payload_bytes`
    /// of records; returns the virtual time at which it completes.
    ///
    /// The caller must later report the completion via
    /// [`LogDevice::complete_write`].
    pub fn begin_write(&mut self, now: SimTime, gen: usize, payload_bytes: u32) -> SimTime {
        let s = &mut self.per_gen[gen];
        s.in_flight += 1;
        s.peak_in_flight = s.peak_in_flight.max(s.in_flight);
        s.payload_bytes.add(u64::from(payload_bytes));
        now + self.latency
    }

    /// Records the completion of a write started with `begin_write`.
    pub fn complete_write(&mut self, gen: usize) {
        let s = &mut self.per_gen[gen];
        debug_assert!(s.in_flight > 0, "completion without a begin");
        s.in_flight -= 1;
        s.writes.incr();
    }

    /// Accounting for one generation.
    pub fn stats(&self, gen: usize) -> &DeviceStats {
        &self.per_gen[gen]
    }

    /// Completed writes summed over all generations.
    pub fn total_writes(&self) -> u64 {
        self.per_gen.iter().map(|s| s.writes.get()).sum()
    }

    /// Completed block writes per second over `elapsed`, all generations.
    pub fn total_write_rate(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_writes() as f64 / secs
        }
    }

    /// Completed block writes per second for one generation.
    pub fn write_rate(&self, gen: usize, elapsed: SimTime) -> f64 {
        self.per_gen[gen].writes.rate_per_sec(elapsed)
    }

    /// Mean payload fill of completed writes, as a fraction of
    /// `payload_capacity` (diagnostic for the group-commit packing).
    pub fn mean_fill(&self, gen: usize, payload_capacity: u32) -> Option<f64> {
        let s = &self.per_gen[gen];
        let w = s.writes.get();
        (w > 0).then(|| s.payload_bytes.get() as f64 / (w as f64 * f64::from(payload_capacity)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_completes_after_latency() {
        let mut d = LogDevice::new(SimTime::from_millis(15), 2);
        let done = d.begin_write(SimTime::from_secs(1), 0, 2000);
        assert_eq!(done, SimTime::from_secs(1) + SimTime::from_millis(15));
    }

    #[test]
    fn accounting_per_generation() {
        let mut d = LogDevice::new(SimTime::from_millis(15), 2);
        d.begin_write(SimTime::ZERO, 0, 1000);
        d.begin_write(SimTime::ZERO, 0, 1500);
        d.begin_write(SimTime::ZERO, 1, 500);
        assert_eq!(d.stats(0).in_flight, 2);
        assert_eq!(d.stats(0).peak_in_flight, 2);
        d.complete_write(0);
        d.complete_write(0);
        d.complete_write(1);
        assert_eq!(d.stats(0).writes.get(), 2);
        assert_eq!(d.stats(1).writes.get(), 1);
        assert_eq!(d.total_writes(), 3);
        assert_eq!(d.stats(0).payload_bytes.get(), 2500);
        assert_eq!(d.stats(0).in_flight, 0);
    }

    #[test]
    fn rates() {
        let mut d = LogDevice::new(SimTime::from_millis(15), 1);
        for _ in 0..50 {
            d.begin_write(SimTime::ZERO, 0, 2000);
            d.complete_write(0);
        }
        let elapsed = SimTime::from_secs(10);
        assert!((d.write_rate(0, elapsed) - 5.0).abs() < 1e-9);
        assert!((d.total_write_rate(elapsed) - 5.0).abs() < 1e-9);
        assert_eq!(d.total_write_rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_fill() {
        let mut d = LogDevice::new(SimTime::from_millis(15), 1);
        assert_eq!(d.mean_fill(0, 2000), None);
        d.begin_write(SimTime::ZERO, 0, 2000);
        d.complete_write(0);
        d.begin_write(SimTime::ZERO, 0, 1000);
        d.complete_write(0);
        assert!((d.mean_fill(0, 2000).unwrap() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn peak_in_flight_monotone() {
        let mut d = LogDevice::new(SimTime::from_millis(1), 1);
        d.begin_write(SimTime::ZERO, 0, 1);
        d.complete_write(0);
        d.begin_write(SimTime::ZERO, 0, 1);
        d.begin_write(SimTime::ZERO, 0, 1);
        assert_eq!(d.stats(0).peak_in_flight, 2);
        d.complete_write(0);
        d.complete_write(0);
        assert_eq!(d.stats(0).peak_in_flight, 2);
    }
}
