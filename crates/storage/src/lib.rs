#![warn(missing_docs)]

//! Block storage substrate for the ephemeral log.
//!
//! §2.2 of the paper: "Information is written to disk in fixed sized blocks
//! (with each block typically some multiple of 1024 bytes). Sequential disk
//! I/O is faster than random disk I/O." This crate provides the pieces of
//! that storage model:
//!
//! * [`block`] — the typed in-memory image of one 2048-byte log block
//!   (48 bytes of bookkeeping + 2000 bytes of record payload);
//! * [`checksum`] — a CRC-32 (IEEE) implementation for block integrity,
//!   written in-tree to keep the dependency set minimal;
//! * [`codec`] — a self-describing wire format for blocks and records, used
//!   by the recovery path that reads real bytes (see DESIGN.md §5 for how
//!   wire sizes relate to the paper's accounting sizes);
//! * [`ring`] — the circular array of disk blocks that backs one generation
//!   (§2.1: "the head and tail pointers rotate through the positions of the
//!   array so that records conceptually move from tail to head but
//!   physically they remain in the same place on disk");
//! * [`device`] — the simulated log device with a fixed per-buffer write
//!   latency (§3: τ_DiskWrite = 15 ms) and bandwidth accounting.

pub mod block;
pub mod checksum;
pub mod codec;
pub mod device;
pub mod ring;

pub use block::{Block, BlockAddr};
pub use checksum::crc32;
pub use codec::{decode_block, encode_block, encode_surface, surface_bytes, CodecError};
pub use device::{DeviceStats, LogDevice};
pub use ring::BlockRing;
