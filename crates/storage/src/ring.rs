//! The circular block array backing one generation.
//!
//! §2.1: "The disk space within each queue is managed as a circular array;
//! the head and tail pointers rotate through the positions of the array so
//! that records conceptually move from tail to head but physically they
//! remain in the same place on disk."
//!
//! Head and tail are monotone `u64` *block sequence numbers*; a block's
//! physical slot is `seq % capacity`. The window `[head, tail)` is the live
//! span: `tail` counts blocks *allocated* (their position promised to
//! buffered records, per §2.3 "Even though the LM has not yet written the
//! buffer to disk, it knows the position of the disk block to which it will
//! eventually be written"), and `head` counts blocks consumed. Allocated
//! blocks become *installed* (physically present) when their device write
//! completes; stale contents in a slot survive until the slot is
//! reallocated and rewritten, which is why a recovery scan reads every slot
//! and filters by block sequence and record state.

use crate::block::{Block, BlockAddr};
use elog_model::GenId;

/// Circular array of `capacity` block slots for one generation.
#[derive(Clone, Debug)]
pub struct BlockRing {
    gen: GenId,
    capacity: u64,
    /// Next block sequence number to allocate at the tail.
    tail: u64,
    /// Next block sequence number to consume at the head.
    head: u64,
    /// Physical slots; `slots[seq % capacity]` holds the most recently
    /// *installed* block for that slot (possibly one the head has already
    /// consumed but that has not been overwritten).
    slots: Vec<Option<Block>>,
}

impl BlockRing {
    /// Creates an empty ring.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(gen: GenId, capacity: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        BlockRing {
            gen,
            capacity,
            tail: 0,
            head: 0,
            slots: vec![None; capacity as usize],
        }
    }

    /// The generation this ring backs.
    pub fn gen(&self) -> GenId {
        self.gen
    }

    /// Total slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sequence number of the next block to be consumed.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Sequence number of the next block to be allocated.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Blocks currently in the live window (allocated, not yet consumed).
    pub fn used_blocks(&self) -> u64 {
        self.tail - self.head
    }

    /// Slots available for new allocations.
    pub fn free_blocks(&self) -> u64 {
        self.capacity - self.used_blocks()
    }

    /// Rebinds the ring to a new capacity, preserving its contents.
    ///
    /// Every physically present block is remapped to its slot under the
    /// new capacity (`seq % capacity`). When two surface blocks contend
    /// for one new slot — possible only for blocks the head has already
    /// consumed, since the live window fits by the precondition below —
    /// the newer sequence number wins, exactly as overwriting would have
    /// resolved it. Head and tail sequence numbers are untouched, so
    /// in-flight writes self-correct: [`BlockRing::install`] computes the
    /// slot from the capacity current at install time.
    ///
    /// Before the head has ever advanced the remap is the identity (every
    /// live `seq < capacity`), which is the state a snapshot-resume probe
    /// resizes in; the general remap is what lets the adaptive controller
    /// (`core::adaptive`) grow or shrink a generation mid-run.
    ///
    /// # Panics
    /// Panics when the live window `[head, tail)` would not fit the new
    /// capacity, or when `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: u64) {
        assert!(capacity > 0, "ring capacity must be positive");
        assert!(
            self.used_blocks() <= capacity,
            "cannot resize to {capacity} below {} live blocks",
            self.used_blocks()
        );
        if capacity == self.capacity {
            return;
        }
        let old = std::mem::replace(&mut self.slots, vec![None; capacity as usize]);
        let mut present: Vec<Block> = old.into_iter().flatten().collect();
        // Ascending by seq, so a later (newer) block overwrites any older
        // one contesting the same new slot.
        present.sort_unstable_by_key(|b| b.addr.seq);
        self.capacity = capacity;
        for b in present {
            let slot = (b.addr.seq % capacity) as usize;
            self.slots[slot] = Some(b);
        }
    }

    /// Allocates the next tail block, returning its address.
    ///
    /// Returns `None` when the ring is full — the caller must first advance
    /// the head (forwarding/flushing/discarding records) or declare the
    /// generation wedged.
    pub fn allocate_tail(&mut self) -> Option<BlockAddr> {
        if self.free_blocks() == 0 {
            return None;
        }
        let addr = BlockAddr {
            gen: self.gen,
            seq: self.tail,
        };
        self.tail += 1;
        Some(addr)
    }

    /// Installs a durable block into its slot (device write completed).
    ///
    /// Returns the block displaced from storage, whose buffers the caller
    /// may recycle: normally the slot's previous occupant, or the incoming
    /// block itself when the slot has already been reallocated to a newer
    /// block — possible only when the tail laps an in-flight write, which
    /// the log manager counts as a durability violation. Whether the
    /// install took effect is observable via [`BlockRing::block`].
    ///
    /// # Panics
    /// Panics if the block was never allocated, or belongs to another ring.
    pub fn install(&mut self, block: Block) -> Option<Block> {
        assert_eq!(
            block.addr.gen, self.gen,
            "block belongs to another generation"
        );
        assert!(
            block.addr.seq < self.tail,
            "installing unallocated block {}",
            block.addr.seq
        );
        if block.addr.seq + self.capacity < self.tail {
            return Some(block); // lapped: the slot belongs to a newer allocation
        }
        let slot = block.addr.slot(self.capacity) as usize;
        match &self.slots[slot] {
            Some(existing) if existing.addr.seq > block.addr.seq => Some(block),
            _ => self.slots[slot].replace(block),
        }
    }

    /// Consumes the block at the head, returning its sequence number.
    ///
    /// Returns `None` when the window is empty (head == tail). The slot's
    /// contents are left in place — they are "on disk" until overwritten.
    pub fn advance_head(&mut self) -> Option<u64> {
        if self.head == self.tail {
            return None;
        }
        let seq = self.head;
        self.head += 1;
        Some(seq)
    }

    /// The installed block with sequence `seq`, if it is still physically
    /// present (not yet overwritten by a later allocation of its slot).
    pub fn block(&self, seq: u64) -> Option<&Block> {
        let slot = (seq % self.capacity) as usize;
        self.slots[slot].as_ref().filter(|b| b.addr.seq == seq)
    }

    /// Iterates over every physically present block, in slot order.
    ///
    /// This is the crash-recovery view: everything readable from the disk
    /// surface, including blocks the head has passed.
    pub fn surface(&self) -> impl Iterator<Item = &Block> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates over the live window `[head, tail)`, oldest first, yielding
    /// installed blocks only (allocated-but-unwritten gaps are skipped).
    pub fn live(&self) -> impl Iterator<Item = &Block> + '_ {
        (self.head..self.tail).filter_map(move |seq| self.block(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elog_sim::SimTime;

    fn blk(gen: GenId, seq: u64) -> Block {
        let mut b = Block::new(BlockAddr { gen, seq });
        b.written_at = SimTime::from_millis(seq);
        b
    }

    #[test]
    fn allocate_until_full() {
        let mut r = BlockRing::new(GenId(0), 3);
        assert_eq!(r.free_blocks(), 3);
        for seq in 0..3 {
            let a = r.allocate_tail().unwrap();
            assert_eq!(a.seq, seq);
        }
        assert_eq!(r.allocate_tail(), None);
        assert_eq!(r.used_blocks(), 3);
    }

    #[test]
    fn head_advance_frees_slots() {
        let mut r = BlockRing::new(GenId(0), 2);
        r.allocate_tail().unwrap();
        r.allocate_tail().unwrap();
        assert_eq!(r.advance_head(), Some(0));
        assert_eq!(r.free_blocks(), 1);
        let a = r.allocate_tail().unwrap();
        assert_eq!(a.seq, 2);
        assert_eq!(a.slot(2), 0); // reuses slot 0
    }

    #[test]
    fn advance_empty_window() {
        let mut r = BlockRing::new(GenId(0), 2);
        assert_eq!(r.advance_head(), None);
    }

    #[test]
    fn install_and_lookup() {
        let mut r = BlockRing::new(GenId(0), 2);
        let a = r.allocate_tail().unwrap();
        let _ = r.install(blk(GenId(0), a.seq));
        assert!(r.block(0).is_some());
        assert!(r.block(1).is_none()); // allocated? no — never allocated
    }

    #[test]
    fn overwritten_block_disappears() {
        let mut r = BlockRing::new(GenId(0), 2);
        r.allocate_tail().unwrap();
        assert!(r.install(blk(GenId(0), 0)).is_none(), "empty slot");
        r.allocate_tail().unwrap();
        let _ = r.install(blk(GenId(0), 1));
        r.advance_head();
        r.allocate_tail().unwrap(); // seq 2, slot 0
        let displaced = r.install(blk(GenId(0), 2));
        assert_eq!(
            displaced.map(|b| b.addr.seq),
            Some(0),
            "overwritten block handed back for recycling"
        );
        assert!(r.block(0).is_none(), "seq 0 overwritten by seq 2");
        assert!(r.block(2).is_some());
    }

    #[test]
    fn consumed_but_not_overwritten_stays_on_surface() {
        let mut r = BlockRing::new(GenId(0), 3);
        r.allocate_tail().unwrap();
        let _ = r.install(blk(GenId(0), 0));
        r.advance_head(); // consumed
        assert!(r.block(0).is_some(), "still physically present");
        assert_eq!(r.surface().count(), 1);
        assert_eq!(r.live().count(), 0, "not in the live window");
    }

    #[test]
    fn live_window_skips_uninstalled() {
        let mut r = BlockRing::new(GenId(0), 4);
        r.allocate_tail().unwrap();
        r.allocate_tail().unwrap();
        let _ = r.install(blk(GenId(0), 1)); // seq 0 allocated but in flight
        let live: Vec<u64> = r.live().map(|b| b.addr.seq).collect();
        assert_eq!(live, vec![1]);
    }

    #[test]
    #[should_panic]
    fn install_unallocated_panics() {
        let mut r = BlockRing::new(GenId(0), 2);
        let _ = r.install(blk(GenId(0), 5));
    }

    #[test]
    #[should_panic]
    fn install_wrong_generation_panics() {
        let mut r = BlockRing::new(GenId(0), 2);
        r.allocate_tail().unwrap();
        let _ = r.install(blk(GenId(1), 0));
    }

    #[test]
    fn set_capacity_preserves_live_blocks() {
        let mut r = BlockRing::new(GenId(0), 8);
        for seq in 0..3 {
            let a = r.allocate_tail().unwrap();
            assert_eq!(a.seq, seq);
            let _ = r.install(blk(GenId(0), seq));
        }
        // Shrink (still above tail) and grow; contents survive both.
        r.set_capacity(4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.free_blocks(), 1);
        assert!(r.block(2).is_some());
        r.set_capacity(16);
        assert_eq!(r.free_blocks(), 13);
        assert!((0..3).all(|s| r.block(s).is_some()));
        let a = r.allocate_tail().unwrap();
        assert_eq!(a.seq, 3);
    }

    #[test]
    #[should_panic]
    fn set_capacity_below_live_window_panics() {
        let mut r = BlockRing::new(GenId(0), 8);
        for _ in 0..3 {
            r.allocate_tail().unwrap();
        }
        r.set_capacity(2);
    }

    #[test]
    fn set_capacity_after_head_advance_remaps() {
        // Wrap a small ring so live seqs no longer map to the same slots
        // under a different modulus, then resize live both ways.
        let mut r = BlockRing::new(GenId(0), 3);
        for _ in 0..7 {
            if r.free_blocks() == 0 {
                r.advance_head();
            }
            let a = r.allocate_tail().unwrap();
            let _ = r.install(blk(GenId(0), a.seq));
        }
        // head 4, tail 7: live window {4, 5, 6}.
        assert_eq!((r.head(), r.tail()), (4, 7));
        r.set_capacity(5);
        assert_eq!(r.capacity(), 5);
        assert_eq!(r.used_blocks(), 3);
        assert_eq!(r.free_blocks(), 2);
        let live: Vec<u64> = r.live().map(|b| b.addr.seq).collect();
        assert_eq!(live, vec![4, 5, 6], "live blocks survive the remap");
        // Allocation continues from the same tail seq into the new slots.
        let a = r.allocate_tail().unwrap();
        assert_eq!(a.seq, 7);
        let _ = r.install(blk(GenId(0), 7));
        assert!(r.block(7).is_some());
        // Shrink back down to exactly the live window.
        r.advance_head(); // consume 4 → live {5, 6, 7}
        r.set_capacity(3);
        let live: Vec<u64> = r.live().map(|b| b.addr.seq).collect();
        assert_eq!(live, vec![5, 6, 7]);
        assert_eq!(r.free_blocks(), 0);
    }

    #[test]
    fn set_capacity_remap_newest_seq_wins_contested_slot() {
        // Two consumed-but-present surface blocks can land on one slot
        // under the new modulus; the newer seq must win, like overwrite.
        let mut r = BlockRing::new(GenId(0), 4);
        for _ in 0..6 {
            if r.free_blocks() == 0 {
                r.advance_head();
                r.advance_head();
            }
            let a = r.allocate_tail().unwrap();
            let _ = r.install(blk(GenId(0), a.seq));
        }
        // head 2, tail 6; consume two more so only {4, 5} stay live while
        // the surface still holds seqs {2, 3, 4, 5}.
        r.advance_head();
        r.advance_head();
        assert_eq!((r.head(), r.tail()), (4, 6));
        let mut seqs: Vec<u64> = r.surface().map(|b| b.addr.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![2, 3, 4, 5]);
        // Under capacity 2, slots are contested: {2, 4} → slot 0 and
        // {3, 5} → slot 1. Live window {4, 5} fits exactly.
        r.set_capacity(2);
        let mut seqs: Vec<u64> = r.surface().map(|b| b.addr.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![4, 5], "newest seq wins each contested slot");
        assert!(r.block(2).is_none());
        assert!(r.block(4).is_some());
    }

    #[test]
    fn long_wrap_stress() {
        let mut r = BlockRing::new(GenId(0), 5);
        let mut installed = 0u64;
        for _ in 0..1000 {
            if r.free_blocks() == 0 {
                r.advance_head();
            }
            let a = r.allocate_tail().unwrap();
            let _ = r.install(blk(GenId(0), a.seq));
            installed += 1;
        }
        assert_eq!(installed, 1000);
        assert_eq!(r.tail(), 1000);
        assert_eq!(r.surface().count(), 5);
        // Surface holds the 5 newest sequence numbers.
        let mut seqs: Vec<u64> = r.surface().map(|b| b.addr.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![995, 996, 997, 998, 999]);
    }
}
