//! Property-based tests for the storage substrate.

use elog_model::{DataRecord, GenId, LogRecord, Oid, Tid, TxMark, TxRecord};
use elog_sim::SimTime;
use elog_storage::block::BlockAddr;
use elog_storage::{decode_block, encode_block, Block, BlockRing};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (
            any::<u64>(),
            0u64..10_000_000,
            1u32..100,
            any::<u32>(),
            35u32..500
        )
            .prop_map(|(tid, oid, seq, ts, size)| {
                LogRecord::Data(DataRecord {
                    tid: Tid(tid),
                    oid: Oid(oid),
                    seq,
                    ts: SimTime::from_micros(u64::from(ts)),
                    size,
                })
            }),
        (any::<u64>(), 0u8..3, any::<u32>()).prop_map(|(tid, m, ts)| {
            let mark = [TxMark::Begin, TxMark::Commit, TxMark::Abort][m as usize];
            LogRecord::Tx(TxRecord {
                tid: Tid(tid),
                mark,
                ts: SimTime::from_micros(u64::from(ts)),
                size: 8,
            })
        }),
    ]
}

proptest! {
    /// Any block of well-formed records round-trips through the codec.
    #[test]
    fn codec_roundtrip(records in proptest::collection::vec(arb_record(), 0..20),
                       gen in 0u8..4, seq in 0u64..1_000_000, written in 0u64..10_000_000) {
        let mut b = Block::new(BlockAddr { gen: GenId(gen), seq });
        b.written_at = SimTime::from_micros(written);
        for r in &records {
            b.records.push(*r);
            b.payload_used += r.size();
        }
        let bytes = encode_block(&b);
        let back = decode_block(&bytes).unwrap();
        prop_assert_eq!(back, b);
    }

    /// Corrupting any single body byte is detected.
    #[test]
    fn codec_detects_any_single_flip(records in proptest::collection::vec(arb_record(), 1..8),
                                     flip in any::<prop::sample::Index>()) {
        let mut b = Block::new(BlockAddr { gen: GenId(0), seq: 1 });
        b.written_at = SimTime::ZERO;
        for r in &records {
            b.records.push(*r);
            b.payload_used += r.size();
        }
        let bytes = encode_block(&b);
        if bytes.len() > 48 {
            let i = 48 + flip.index(bytes.len() - 48);
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            prop_assert!(decode_block(&bad).is_err(), "flip at {} undetected", i);
        }
    }

    /// The ring matches a simple window model under arbitrary
    /// allocate/advance interleavings.
    #[test]
    fn ring_window_model(cap in 1u64..20, ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut ring = BlockRing::new(GenId(0), cap);
        let mut head = 0u64;
        let mut tail = 0u64;
        for alloc in ops {
            if alloc {
                match ring.allocate_tail() {
                    Some(addr) => {
                        prop_assert_eq!(addr.seq, tail);
                        tail += 1;
                        prop_assert!(tail - head <= cap);
                    }
                    None => prop_assert_eq!(tail - head, cap),
                }
            } else {
                match ring.advance_head() {
                    Some(seq) => {
                        prop_assert_eq!(seq, head);
                        head += 1;
                    }
                    None => prop_assert_eq!(head, tail),
                }
            }
            prop_assert_eq!(ring.head(), head);
            prop_assert_eq!(ring.tail(), tail);
            prop_assert_eq!(ring.free_blocks(), cap - (tail - head));
        }
    }

    /// The surface holds at most `cap` blocks and exactly the newest
    /// installed block per slot.
    #[test]
    fn ring_surface_keeps_newest_per_slot(cap in 1u64..8, n in 1u64..64) {
        let mut ring = BlockRing::new(GenId(0), cap);
        for _ in 0..n {
            if ring.free_blocks() == 0 {
                ring.advance_head();
            }
            let addr = ring.allocate_tail().unwrap();
            let mut b = Block::new(addr);
            b.written_at = SimTime::from_micros(addr.seq);
            let _displaced = ring.install(b);
            prop_assert!(ring.block(addr.seq).is_some());
        }
        let mut seqs: Vec<u64> = ring.surface().map(|b| b.addr.seq).collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (n.saturating_sub(cap)..n).collect();
        prop_assert_eq!(seqs, expect);
    }
}
