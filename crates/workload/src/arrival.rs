//! Transaction arrival processes.
//!
//! §3: "Transactions are initiated at regular intervals, according to the
//! specified arrival rate (transactions per second). We believe that this
//! simple, deterministic arrival pattern is sufficient for a first order
//! evaluation of EL. More complicated probabilistic models (such as Markov
//! arrivals) may be investigated in future work."
//!
//! We implement the deterministic process the paper used, plus two of the
//! probabilistic models it gestures at: a Poisson process and a two-state
//! Markov-modulated Poisson process (bursty arrivals), both used by the
//! robustness ablations.

use elog_sim::{SimRng, SimTime};

/// How transaction arrivals are spaced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed interval `1/rate` (the paper's model).
    Deterministic {
        /// Arrivals per second.
        rate_tps: f64,
    },
    /// Exponentially distributed inter-arrival times with mean `1/rate`.
    Poisson {
        /// Mean arrivals per second.
        rate_tps: f64,
    },
    /// Two-state Markov-modulated Poisson process: the paper's "Markov
    /// arrivals" future-work pointer. Alternates between a quiet state at
    /// `base_tps` and a burst state at `burst_tps`; after each arrival the
    /// process switches state with probability chosen so state dwell times
    /// average `mean_dwell_s` seconds. The long-run mean rate is the
    /// dwell-weighted average of the two rates.
    MarkovBursty {
        /// Quiet-state arrivals per second.
        base_tps: f64,
        /// Burst-state arrivals per second.
        burst_tps: f64,
        /// Mean seconds spent in each state before switching.
        mean_dwell_s: f64,
        /// Current state (start value; evolves as intervals are drawn).
        in_burst: bool,
    },
}

impl ArrivalProcess {
    /// Validates the process parameters.
    ///
    /// Rates and dwell times must be positive and finite. For
    /// [`ArrivalProcess::MarkovBursty`] the switch probability drawn after
    /// each arrival is `1/(rate × mean_dwell_s)`; when `rate ×
    /// mean_dwell_s < 1` in either state that probability would have to
    /// exceed 1, the clamp silently stretches the achieved dwell, and
    /// [`ArrivalProcess::rate_tps`]'s dwell-weighted average no longer
    /// describes the process. Such configurations are rejected here
    /// instead of being distorted at draw time.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |name: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        };
        match *self {
            ArrivalProcess::Deterministic { rate_tps } | ArrivalProcess::Poisson { rate_tps } => {
                positive("rate_tps", rate_tps)
            }
            ArrivalProcess::MarkovBursty {
                base_tps,
                burst_tps,
                mean_dwell_s,
                ..
            } => {
                positive("base_tps", base_tps)?;
                positive("burst_tps", burst_tps)?;
                positive("mean_dwell_s", mean_dwell_s)?;
                let slow = base_tps.min(burst_tps);
                if slow * mean_dwell_s < 1.0 {
                    return Err(format!(
                        "MarkovBursty dwell is unrealisable: rate × dwell = \
                         {:.3} < 1 in the {:.1} TPS state, so the per-arrival \
                         switch probability 1/(rate × dwell) would exceed 1 \
                         and the achieved mean dwell would be stretched to \
                         1/rate; raise the rate or the dwell",
                        slow * mean_dwell_s,
                        slow
                    ));
                }
                Ok(())
            }
        }
    }

    /// The configured long-run mean rate in arrivals per second.
    pub fn rate_tps(&self) -> f64 {
        match *self {
            ArrivalProcess::Deterministic { rate_tps } | ArrivalProcess::Poisson { rate_tps } => {
                rate_tps
            }
            // Equal mean dwell in each state ⇒ time-weighted average rate.
            ArrivalProcess::MarkovBursty {
                base_tps,
                burst_tps,
                ..
            } => (base_tps + burst_tps) / 2.0,
        }
    }

    /// Draws the next inter-arrival interval, evolving any internal state
    /// (the Markov process switches between quiet and burst phases).
    ///
    /// # Panics
    /// Panics (debug) on configs [`ArrivalProcess::validate`] rejects;
    /// validate configs upstream ([`crate::WorkloadDriver::new`] does).
    pub fn next_interval(&mut self, rng: &mut SimRng) -> SimTime {
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        match self {
            ArrivalProcess::Deterministic { rate_tps } => SimTime::from_secs_f64(1.0 / *rate_tps),
            ArrivalProcess::Poisson { rate_tps } => {
                SimTime::from_secs_f64(rng.next_exp(1.0 / *rate_tps))
            }
            ArrivalProcess::MarkovBursty {
                base_tps,
                burst_tps,
                mean_dwell_s,
                in_burst,
            } => {
                let rate = if *in_burst { *burst_tps } else { *base_tps };
                // Expected arrivals per dwell = rate × dwell; switching
                // after each arrival with probability 1/(rate × dwell)
                // makes dwell times geometric with the right mean. The
                // probability is a real one (≤ 1) because validate()
                // rejects rate × dwell < 1 instead of clamping, which
                // would silently stretch the achieved dwell.
                let p_switch = 1.0 / (rate * *mean_dwell_s);
                if rng.next_f64() < p_switch {
                    *in_burst = !*in_burst;
                }
                SimTime::from_secs_f64(rng.next_exp(1.0 / rate))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_interval_is_exact() {
        let mut p = ArrivalProcess::Deterministic { rate_tps: 100.0 };
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(p.next_interval(&mut rng), SimTime::from_millis(10));
        }
        assert_eq!(p.rate_tps(), 100.0);
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut p = ArrivalProcess::Poisson { rate_tps: 200.0 };
        let mut rng = SimRng::new(2);
        let n = 100_000;
        let total: SimTime = (0..n).map(|_| p.next_interval(&mut rng)).sum();
        let mean_secs = total.as_secs_f64() / n as f64;
        assert!(
            (mean_secs - 0.005).abs() < 2e-4,
            "mean interval {mean_secs}"
        );
    }

    #[test]
    fn poisson_intervals_vary() {
        let mut p = ArrivalProcess::Poisson { rate_tps: 10.0 };
        let mut rng = SimRng::new(3);
        let a = p.next_interval(&mut rng);
        let b = p.next_interval(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn markov_mean_rate_between_phases() {
        let mut p = ArrivalProcess::MarkovBursty {
            base_tps: 50.0,
            burst_tps: 200.0,
            mean_dwell_s: 0.5,
            in_burst: false,
        };
        assert_eq!(p.rate_tps(), 125.0);
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let total: SimTime = (0..n).map(|_| p.next_interval(&mut rng)).sum();
        let rate = n as f64 / total.as_secs_f64();
        // Arrival-weighted rate exceeds the time-weighted mean (more
        // arrivals are drawn while bursting); it must land between the
        // phase rates and above the time-weighted mean.
        assert!(rate > 125.0 && rate < 200.0, "observed rate {rate}");
    }

    #[test]
    fn markov_is_burstier_than_poisson() {
        // Compare squared coefficient of variation of inter-arrival times.
        let cv2 = |mut p: ArrivalProcess, seed: u64| {
            let mut rng = SimRng::new(seed);
            let xs: Vec<f64> = (0..100_000)
                .map(|_| p.next_interval(&mut rng).as_secs_f64())
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(ArrivalProcess::Poisson { rate_tps: 100.0 }, 5);
        let markov = cv2(
            ArrivalProcess::MarkovBursty {
                base_tps: 25.0,
                burst_tps: 400.0,
                mean_dwell_s: 1.0,
                in_burst: false,
            },
            5,
        );
        assert!(
            (poisson - 1.0).abs() < 0.05,
            "Poisson CV² ≈ 1, got {poisson}"
        );
        assert!(markov > 1.5, "MMPP must be over-dispersed, CV² {markov}");
    }

    #[test]
    fn markov_switches_states() {
        let mut p = ArrivalProcess::MarkovBursty {
            base_tps: 10.0,
            burst_tps: 1000.0,
            mean_dwell_s: 0.2,
            in_burst: false,
        };
        let mut rng = SimRng::new(6);
        let mut saw_burst = false;
        for _ in 0..10_000 {
            let _ = p.next_interval(&mut rng);
            if let ArrivalProcess::MarkovBursty { in_burst, .. } = p {
                saw_burst |= in_burst;
            }
        }
        assert!(saw_burst, "process must visit the burst state");
    }

    #[test]
    fn clamped_markov_dwell_is_rejected() {
        // Regression: rate × dwell = 10 × 0.05 = 0.5 < 1 in the quiet
        // state. The old draw path clamped p_switch to 1, switching after
        // every quiet-state arrival and stretching the achieved quiet
        // dwell from 0.05 s to 1/rate = 0.1 s — double the configured
        // mean, so rate_tps()'s "dwell-weighted average" was wrong.
        // Such configs must now fail validation up front.
        let p = ArrivalProcess::MarkovBursty {
            base_tps: 10.0,
            burst_tps: 1000.0,
            mean_dwell_s: 0.05,
            in_burst: false,
        };
        let err = p.validate().unwrap_err();
        assert!(err.contains("unrealisable"), "unexpected message: {err}");

        // The boundary case rate × dwell = 1 is exactly realisable.
        let boundary = ArrivalProcess::MarkovBursty {
            base_tps: 10.0,
            burst_tps: 1000.0,
            mean_dwell_s: 0.1,
            in_burst: false,
        };
        assert!(boundary.validate().is_ok());

        // Non-positive parameters are rejected for every process kind.
        assert!(ArrivalProcess::Poisson { rate_tps: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Deterministic { rate_tps: -1.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Deterministic { rate_tps: 100.0 }
            .validate()
            .is_ok());
    }
}
