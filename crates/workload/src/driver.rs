//! The workload driver.
//!
//! Produces the event stream of Figure 3 for every transaction: BEGIN at
//! arrival, N evenly spaced data-record writes, a COMMIT record write T
//! after arrival, then a wait for the group-commit acknowledgement. The
//! driver is queue-agnostic: each callback returns the *new events* (absolute
//! time + payload) the caller must schedule, so the experiment harness can
//! wrap them in its own composite event type and keep the cancellation
//! tokens needed to retract a killed transaction's remaining writes.

use crate::arrival::ArrivalProcess;
use crate::oidpick::OidPicker;
use crate::spec::TxMix;
use elog_model::{Oid, Tid};
use elog_sim::FxHashMap;
use elog_sim::{Histogram, MaxGauge, SimRng, SimTime};

/// Events the driver asks to be scheduled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadEvent {
    /// A new transaction arrives.
    Arrival,
    /// Transaction `tid` writes its `seq`-th data record.
    WriteData {
        /// The writing transaction.
        tid: Tid,
        /// 1-based record index within the transaction.
        seq: u32,
    },
    /// Transaction `tid` writes its COMMIT record.
    WriteCommit {
        /// The committing transaction.
        tid: Tid,
    },
}

/// A freshly arrived transaction, to be announced to the log manager.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NewTxn {
    /// Assigned transaction id.
    pub tid: Tid,
    /// Index into the mix's type list.
    pub type_idx: usize,
}

/// One update performed by a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Update {
    /// Updated object.
    pub oid: Oid,
    /// 1-based update index within the transaction.
    pub seq: u32,
    /// Time the data record was written.
    pub ts: SimTime,
}

#[derive(Clone, Debug)]
struct ActiveTxn {
    type_idx: usize,
    updates: Vec<Update>,
    commit_written: Option<SimTime>,
}

/// Aggregate workload statistics.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Transactions started.
    pub started: u64,
    /// Transactions acknowledged as committed.
    pub committed: u64,
    /// Transactions killed by the log manager.
    pub killed: u64,
    /// Data records written.
    pub data_records: u64,
    /// Commit-ack latency (t4 − t3), in milliseconds.
    pub commit_latency_ms: Histogram,
    /// Concurrently active transactions.
    pub active: MaxGauge,
    /// Started count per type index.
    pub per_type_started: Vec<u64>,
}

impl WorkloadStats {
    fn new(n_types: usize) -> Self {
        WorkloadStats {
            started: 0,
            committed: 0,
            killed: 0,
            data_records: 0,
            commit_latency_ms: Histogram::linear(500.0, 100),
            active: MaxGauge::new(),
            per_type_started: vec![0; n_types],
        }
    }
}

/// The workload driver (see module docs).
#[derive(Clone, Debug)]
pub struct WorkloadDriver {
    mix: TxMix,
    arrivals: ArrivalProcess,
    rng_mix: SimRng,
    rng_oid: SimRng,
    picker: OidPicker,
    /// No arrivals are generated at or after this time.
    horizon: SimTime,
    next_tid: u64,
    active: FxHashMap<Tid, ActiveTxn>,
    stats: WorkloadStats,
}

impl WorkloadDriver {
    /// Creates a driver.
    ///
    /// * `mix` — transaction types and pdf;
    /// * `arrivals` — arrival process (the paper uses deterministic);
    /// * `num_objects` — oid space size;
    /// * `horizon` — arrivals stop at this time (the paper's 500 s runtime);
    /// * `rng` — parent random stream; the driver derives independent
    ///   substreams for type sampling and oid picking.
    pub fn new(
        mix: TxMix,
        arrivals: ArrivalProcess,
        num_objects: u64,
        horizon: SimTime,
        rng: &SimRng,
    ) -> Self {
        let n_types = mix.types().len();
        WorkloadDriver {
            mix,
            arrivals,
            rng_mix: rng.substream("workload/mix"),
            rng_oid: rng.substream("workload/oid"),
            picker: OidPicker::new(num_objects),
            horizon,
            next_tid: 0,
            active: FxHashMap::default(),
            stats: WorkloadStats::new(n_types),
        }
    }

    /// The first event to schedule: an arrival at `start`.
    pub fn bootstrap(&self, start: SimTime) -> Vec<(SimTime, WorkloadEvent)> {
        vec![(start, WorkloadEvent::Arrival)]
    }

    /// Handles an arrival: assigns a tid and type, and returns the new
    /// transaction plus the events to schedule (its record writes and the
    /// next arrival). Returns `None` past the horizon.
    pub fn on_arrival(&mut self, now: SimTime) -> Option<(NewTxn, Vec<(SimTime, WorkloadEvent)>)> {
        if now >= self.horizon {
            return None;
        }
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let type_idx = self.mix.sample(&mut self.rng_mix);
        let ty = self.mix.types()[type_idx];

        let mut events = Vec::with_capacity(ty.data_records as usize + 2);
        for seq in 1..=ty.data_records {
            events.push((
                now + ty.data_write_offset(seq),
                WorkloadEvent::WriteData { tid, seq },
            ));
        }
        events.push((now + ty.duration, WorkloadEvent::WriteCommit { tid }));

        let next = now + self.arrivals.next_interval(&mut self.rng_mix);
        if next < self.horizon {
            events.push((next, WorkloadEvent::Arrival));
        }

        self.active.insert(
            tid,
            ActiveTxn {
                type_idx,
                updates: Vec::with_capacity(ty.data_records as usize),
                commit_written: None,
            },
        );
        self.stats.started += 1;
        self.stats.per_type_started[type_idx] += 1;
        self.stats.active.set(now, self.active.len() as u64);
        Some((NewTxn { tid, type_idx }, events))
    }

    /// Handles a data-record write: picks the oid and returns it with the
    /// record size. Returns `None` when the transaction no longer exists
    /// (killed, and the cancellation raced this event).
    pub fn on_write_data(&mut self, now: SimTime, tid: Tid, seq: u32) -> Option<(Oid, u32)> {
        let txn = self.active.get_mut(&tid)?;
        debug_assert!(
            txn.commit_written.is_none(),
            "data write after commit for {tid}"
        );
        let oid = self.picker.pick(&mut self.rng_oid);
        txn.updates.push(Update { oid, seq, ts: now });
        self.stats.data_records += 1;
        let size = self.mix.types()[txn.type_idx].record_size;
        Some((oid, size))
    }

    /// Handles the COMMIT-record write (t3). Returns `false` when the
    /// transaction no longer exists.
    pub fn on_write_commit(&mut self, now: SimTime, tid: Tid) -> bool {
        match self.active.get_mut(&tid) {
            Some(txn) => {
                txn.commit_written = Some(now);
                true
            }
            None => false,
        }
    }

    /// Handles the commit acknowledgement (t4): the transaction's oids stop
    /// being "chosen by an active transaction", and its updates are
    /// returned so the caller can feed a committed-state oracle.
    pub fn on_commit_ack(&mut self, now: SimTime, tid: Tid) -> Vec<Update> {
        let Some(txn) = self.active.remove(&tid) else {
            return Vec::new();
        };
        self.picker.release_all(txn.updates.iter().map(|u| u.oid));
        if let Some(t3) = txn.commit_written {
            self.stats
                .commit_latency_ms
                .record(now.saturating_sub(t3).as_micros() as f64 / 1000.0);
        }
        self.stats.committed += 1;
        self.stats.active.set(now, self.active.len() as u64);
        txn.updates
    }

    /// Handles a kill from the log manager: drops the transaction and
    /// releases its oids. The caller is responsible for cancelling the
    /// transaction's still-pending events.
    pub fn on_kill(&mut self, now: SimTime, tid: Tid) {
        if let Some(txn) = self.active.remove(&tid) {
            self.picker.release_all(txn.updates.iter().map(|u| u.oid));
            self.stats.killed += 1;
            self.stats.active.set(now, self.active.len() as u64);
        }
    }

    /// Number of transactions currently between BEGIN and ack.
    pub fn active_txns(&self) -> usize {
        self.active.len()
    }

    /// The updates a live transaction has performed so far.
    pub fn updates_of(&self, tid: Tid) -> Option<&[Update]> {
        self.active.get(&tid).map(|t| t.updates.as_slice())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// The oid picker (for diagnostics).
    pub fn picker(&self) -> &OidPicker {
        &self.picker
    }

    /// The configured mix.
    pub fn mix(&self) -> &TxMix {
        &self.mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TxMix;

    fn driver(frac_long: f64, horizon_s: u64) -> WorkloadDriver {
        WorkloadDriver::new(
            TxMix::paper_mix(frac_long),
            ArrivalProcess::Deterministic { rate_tps: 100.0 },
            10_000_000,
            SimTime::from_secs(horizon_s),
            &SimRng::new(42),
        )
    }

    #[test]
    fn arrival_produces_plan_and_schedule() {
        let mut d = driver(0.0, 10);
        let boot = d.bootstrap(SimTime::ZERO);
        assert_eq!(boot, vec![(SimTime::ZERO, WorkloadEvent::Arrival)]);

        let (new, events) = d.on_arrival(SimTime::ZERO).unwrap();
        assert_eq!(new.tid, Tid(0));
        assert_eq!(new.type_idx, 0, "frac_long 0 ⇒ always short type");
        // Short type: 2 data writes + 1 commit + next arrival.
        assert_eq!(events.len(), 4);
        let commit_at = events
            .iter()
            .find_map(|(t, e)| matches!(e, WorkloadEvent::WriteCommit { .. }).then_some(*t))
            .unwrap();
        assert_eq!(commit_at, SimTime::from_secs(1));
        let last_data = events
            .iter()
            .filter_map(|(t, e)| matches!(e, WorkloadEvent::WriteData { seq: 2, .. }).then_some(*t))
            .next()
            .unwrap();
        assert_eq!(
            commit_at.saturating_sub(last_data),
            SimTime::from_millis(1),
            "ε gap"
        );
        // Next arrival 10 ms later (100 TPS).
        assert!(events.contains(&(SimTime::from_millis(10), WorkloadEvent::Arrival)));
    }

    #[test]
    fn horizon_stops_arrivals() {
        let mut d = driver(0.0, 1);
        // Arrival exactly at the horizon is rejected.
        assert!(d.on_arrival(SimTime::from_secs(1)).is_none());
        // An arrival just before the horizon happens but does not chain a
        // next arrival past it.
        let (_, events) = d.on_arrival(SimTime::from_micros(999_999)).unwrap();
        assert!(!events.iter().any(|(_, e)| *e == WorkloadEvent::Arrival));
    }

    #[test]
    fn full_transaction_lifecycle() {
        let mut d = driver(0.0, 10);
        let (new, _) = d.on_arrival(SimTime::ZERO).unwrap();
        let tid = new.tid;

        let (oid1, size) = d.on_write_data(SimTime::from_millis(500), tid, 1).unwrap();
        assert_eq!(size, 100);
        let (oid2, _) = d.on_write_data(SimTime::from_millis(999), tid, 2).unwrap();
        assert_ne!(oid1, oid2, "same txn never reuses an oid");
        assert!(d.picker().is_held(oid1));

        assert!(d.on_write_commit(SimTime::from_secs(1), tid));
        let updates = d.on_commit_ack(SimTime::from_micros(1_030_000), tid);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].oid, oid1);
        assert!(!d.picker().is_held(oid1), "ack releases oids");
        assert_eq!(d.stats().committed, 1);
        assert_eq!(d.stats().commit_latency_ms.total(), 1);
        // ~30 ms latency recorded.
        assert!(d.stats().commit_latency_ms.max().unwrap() >= 30.0);
    }

    #[test]
    fn kill_releases_and_counts() {
        let mut d = driver(0.0, 10);
        let (new, _) = d.on_arrival(SimTime::ZERO).unwrap();
        let (oid, _) = d
            .on_write_data(SimTime::from_millis(1), new.tid, 1)
            .unwrap();
        d.on_kill(SimTime::from_millis(2), new.tid);
        assert!(!d.picker().is_held(oid));
        assert_eq!(d.stats().killed, 1);
        assert_eq!(d.active_txns(), 0);
        // Stray events for the dead txn are ignored gracefully.
        assert!(d
            .on_write_data(SimTime::from_millis(3), new.tid, 2)
            .is_none());
        assert!(!d.on_write_commit(SimTime::from_millis(4), new.tid));
        assert!(d.on_commit_ack(SimTime::from_millis(5), new.tid).is_empty());
        assert_eq!(d.stats().killed, 1, "double kill not counted");
        d.on_kill(SimTime::from_millis(6), new.tid);
        assert_eq!(d.stats().killed, 1);
    }

    #[test]
    fn tids_are_dense_and_unique() {
        let mut d = driver(0.5, 100);
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            let (new, _) = d.on_arrival(t).unwrap();
            assert_eq!(new.tid, Tid(i));
            t += SimTime::from_millis(10);
        }
        assert_eq!(d.stats().started, 50);
        assert_eq!(d.active_txns(), 50);
        assert_eq!(d.stats().active.peak(), 50);
    }

    #[test]
    fn per_type_counts_follow_pdf() {
        let mut d = driver(0.3, 1_000_000);
        let mut t = SimTime::ZERO;
        for _ in 0..20_000 {
            d.on_arrival(t).unwrap();
            t += SimTime::from_millis(10);
        }
        let frac = d.stats().per_type_started[1] as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "long fraction {frac}");
    }

    #[test]
    fn updates_of_live_txn_visible() {
        let mut d = driver(0.0, 10);
        let (new, _) = d.on_arrival(SimTime::ZERO).unwrap();
        assert_eq!(d.updates_of(new.tid).unwrap().len(), 0);
        d.on_write_data(SimTime::from_millis(1), new.tid, 1);
        assert_eq!(d.updates_of(new.tid).unwrap().len(), 1);
        assert!(d.updates_of(Tid(999)).is_none());
    }
}
