//! The workload driver.
//!
//! Produces the event stream of Figure 3 for every transaction: BEGIN at
//! arrival, N evenly spaced data-record writes, a COMMIT record write T
//! after arrival, then a wait for the group-commit acknowledgement. The
//! driver is queue-agnostic: each callback returns the *new events* (absolute
//! time + payload) the caller must schedule, so the experiment harness can
//! wrap them in its own composite event type and keep the cancellation
//! tokens needed to retract a killed transaction's remaining writes.
//!
//! Two sources feed the stream (see [`crate::trace`]): **live** — the
//! RNG-driven generator of the paper, optionally capturing a
//! [`WorkloadTrace`] as it runs — and **replay** — walking a previously
//! captured trace with no RNG, no oid picker and no per-event allocation,
//! which is what the minimum-space searches probe geometries with.

use crate::arrival::ArrivalProcess;
use crate::oidpick::OidPicker;
use crate::spec::{PhaseSchedule, TxMix};
use crate::trace::{TraceBuilder, WorkloadTrace, UNWRITTEN};
use elog_model::{Oid, Tid};
use elog_sim::FxHashMap;
use elog_sim::{Histogram, MaxGauge, SimRng, SimTime};
use std::sync::Arc;

/// Events the driver asks to be scheduled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadEvent {
    /// A new transaction arrives.
    Arrival,
    /// Transaction `tid` writes its `seq`-th data record.
    WriteData {
        /// The writing transaction.
        tid: Tid,
        /// 1-based record index within the transaction.
        seq: u32,
    },
    /// Transaction `tid` writes its COMMIT record.
    WriteCommit {
        /// The committing transaction.
        tid: Tid,
    },
}

/// A freshly arrived transaction, to be announced to the log manager.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NewTxn {
    /// Assigned transaction id.
    pub tid: Tid,
    /// Index into the mix's type list.
    pub type_idx: usize,
}

/// One update performed by a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Update {
    /// Updated object.
    pub oid: Oid,
    /// 1-based update index within the transaction.
    pub seq: u32,
    /// Time the data record was written.
    pub ts: SimTime,
}

#[derive(Clone, Debug)]
struct ActiveTxn {
    type_idx: usize,
    started_at: SimTime,
    updates: Vec<Update>,
    commit_written: Option<SimTime>,
}

/// Aggregate workload statistics.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Transactions started.
    pub started: u64,
    /// Transactions acknowledged as committed.
    pub committed: u64,
    /// Transactions killed by the log manager.
    pub killed: u64,
    /// Data records written.
    pub data_records: u64,
    /// Commit-ack latency (t4 − t3), in milliseconds.
    pub commit_latency_ms: Histogram,
    /// Whole-transaction commit latency (arrival → commit durable,
    /// t4 − t1), in milliseconds. Geometric buckets: one histogram must
    /// resolve both the ~1 s short type and 10 s+ stragglers, and tail
    /// quantiles (p99) care about relative, not absolute, resolution.
    pub full_latency_ms: Histogram,
    /// Concurrently active transactions.
    pub active: MaxGauge,
    /// Started count per type index.
    pub per_type_started: Vec<u64>,
}

impl WorkloadStats {
    fn new(n_types: usize) -> Self {
        WorkloadStats {
            started: 0,
            committed: 0,
            killed: 0,
            data_records: 0,
            commit_latency_ms: Histogram::linear(500.0, 100),
            full_latency_ms: Histogram::geometric(1.0, 120_000.0, 20),
            active: MaxGauge::new(),
            per_type_started: vec![0; n_types],
        }
    }
}

/// Where the workload's nondeterminism comes from.
///
/// The variants differ in size (the live generator owns two RNGs and a
/// picker, the replayer one `Arc`), but a driver holds exactly one
/// `Source` for its whole life — boxing the large variant would buy
/// nothing and cost a pointer chase on the generation hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Source {
    /// RNG-driven generation (the paper's model), optionally capturing.
    Live {
        arrivals: ArrivalProcess,
        rng_mix: SimRng,
        rng_oid: SimRng,
        picker: OidPicker,
        capture: Option<TraceBuilder>,
    },
    /// Replaying a captured trace: no RNG, no picker, no allocation.
    Replay { trace: Arc<WorkloadTrace> },
}

/// The workload driver (see module docs).
#[derive(Clone, Debug)]
pub struct WorkloadDriver {
    mix: TxMix,
    /// Live-only piecewise mix/rate schedule (see [`PhaseSchedule`]).
    /// `None` means the static `mix` for the whole run. Replay drivers
    /// never carry one: captured traces store per-transaction type
    /// indices and arrival times, which already encode the schedule.
    schedule: Option<PhaseSchedule>,
    source: Source,
    /// No arrivals are generated at or after this time.
    horizon: SimTime,
    next_tid: u64,
    active: FxHashMap<Tid, ActiveTxn>,
    stats: WorkloadStats,
    /// When false (replay without an oracle), per-transaction updates are
    /// not recorded and [`Self::on_commit_ack`] returns an empty slice.
    track_updates: bool,
    /// Retired update vectors, reused by later arrivals.
    spare_updates: Vec<Vec<Update>>,
    /// The last acknowledged transaction's updates (borrowed out).
    ack_buf: Vec<Update>,
}

impl WorkloadDriver {
    /// Creates a live driver.
    ///
    /// * `mix` — transaction types and pdf;
    /// * `arrivals` — arrival process (the paper uses deterministic);
    /// * `num_objects` — oid space size;
    /// * `horizon` — arrivals stop at this time (the paper's 500 s runtime);
    /// * `rng` — parent random stream; the driver derives independent
    ///   substreams for type sampling and oid picking.
    ///
    /// # Panics
    /// Panics when `arrivals` fails [`ArrivalProcess::validate`] (e.g. a
    /// MarkovBursty config whose dwell the draw path could only achieve
    /// by distorting it).
    pub fn new(
        mix: TxMix,
        arrivals: ArrivalProcess,
        num_objects: u64,
        horizon: SimTime,
        rng: &SimRng,
    ) -> Self {
        if let Err(e) = arrivals.validate() {
            panic!("invalid arrival process: {e}");
        }
        let n_types = mix.types().len();
        WorkloadDriver {
            mix,
            schedule: None,
            source: Source::Live {
                arrivals,
                rng_mix: rng.substream("workload/mix"),
                rng_oid: rng.substream("workload/oid"),
                picker: OidPicker::new(num_objects),
                capture: None,
            },
            horizon,
            next_tid: 0,
            active: FxHashMap::default(),
            stats: WorkloadStats::new(n_types),
            track_updates: true,
            spare_updates: Vec::new(),
            ack_buf: Vec::new(),
        }
    }

    /// Creates a replay driver walking `trace`.
    ///
    /// `mix` must be the capture run's mix (type indices and record counts
    /// are resolved against it). `track_updates` keeps per-transaction
    /// update lists for oracle-tracking callers; probe runs pass `false`
    /// and pay no per-update bookkeeping.
    pub fn replay(mix: TxMix, trace: Arc<WorkloadTrace>, track_updates: bool) -> Self {
        let n_types = mix.types().len();
        let horizon = trace.horizon();
        WorkloadDriver {
            mix,
            schedule: None,
            source: Source::Replay { trace },
            horizon,
            next_tid: 0,
            active: FxHashMap::default(),
            stats: WorkloadStats::new(n_types),
            track_updates,
            spare_updates: Vec::new(),
            ack_buf: Vec::new(),
        }
    }

    /// Attaches a phase schedule (live drivers only; must be set before
    /// the first arrival). `None` is a no-op, so callers can pass an
    /// optional config straight through.
    ///
    /// # Panics
    /// Panics on a replay driver, after arrivals have begun, or when the
    /// schedule's type table does not match the base mix.
    pub fn with_phases(mut self, schedule: Option<PhaseSchedule>) -> Self {
        let Some(schedule) = schedule else {
            return self;
        };
        assert!(
            matches!(self.source, Source::Live { .. }),
            "phase schedules apply to live drivers only; replay traces \
             already encode the schedule"
        );
        assert_eq!(self.next_tid, 0, "schedule must be set before arrivals");
        assert!(
            schedule.matches_types(&self.mix),
            "phase schedule type table does not match the base mix"
        );
        self.schedule = Some(schedule);
        self
    }

    /// Starts capturing a [`WorkloadTrace`]. Must be called before the
    /// first arrival; panics on a replay driver.
    pub fn enable_capture(&mut self) {
        assert_eq!(self.next_tid, 0, "capture must start before any arrival");
        match &mut self.source {
            Source::Live { capture, .. } => *capture = Some(TraceBuilder::default()),
            Source::Replay { .. } => panic!("cannot capture while replaying"),
        }
    }

    /// Takes the captured trace, if capture was enabled *and* the run was
    /// kill-free (a killed capture is truncated and unusable — see
    /// [`crate::trace`] module docs).
    pub fn take_trace(&mut self) -> Option<WorkloadTrace> {
        let Source::Live { capture, .. } = &mut self.source else {
            return None;
        };
        let builder = capture.take()?;
        if self.stats.killed > 0 {
            return None;
        }
        Some(builder.finish(self.horizon))
    }

    /// The first event to schedule: an arrival at `start`.
    pub fn bootstrap(&self, start: SimTime) -> Vec<(SimTime, WorkloadEvent)> {
        vec![(start, WorkloadEvent::Arrival)]
    }

    /// Handles an arrival: assigns a tid and type, fills `events` with the
    /// record writes and next arrival to schedule (clearing it first), and
    /// returns the new transaction. Returns `None` past the horizon.
    pub fn on_arrival(
        &mut self,
        now: SimTime,
        events: &mut Vec<(SimTime, WorkloadEvent)>,
    ) -> Option<NewTxn> {
        events.clear();
        if now >= self.horizon {
            return None;
        }
        let tid = Tid(self.next_tid);
        let type_idx = match &mut self.source {
            Source::Live {
                arrivals,
                rng_mix,
                capture,
                ..
            } => {
                // Under a phase schedule the active phase's mix is
                // sampled and its rate factor compresses (or stretches)
                // the gap to the next arrival; both are recorded in the
                // capture (type index, arrival times), so replay needs no
                // schedule of its own.
                let (mix_now, rate_factor) = match &self.schedule {
                    Some(s) => {
                        let p = s.phase_at(now);
                        (&p.mix, p.rate_factor)
                    }
                    None => (&self.mix, 1.0),
                };
                let type_idx = mix_now.sample(rng_mix);
                let mut gap = arrivals.next_interval(rng_mix);
                if rate_factor != 1.0 {
                    gap = SimTime::from_secs_f64(gap.as_secs_f64() / rate_factor);
                }
                let next = now + gap;
                if next < self.horizon {
                    events.push((next, WorkloadEvent::Arrival));
                }
                if let Some(b) = capture {
                    b.on_arrival(now, type_idx, self.mix.types()[type_idx].data_records);
                }
                type_idx
            }
            Source::Replay { trace } => {
                let t = trace.txns.get(self.next_tid as usize)?;
                debug_assert_eq!(t.at, now, "replay arrival off schedule");
                if let Some(next) = trace.txns.get(self.next_tid as usize + 1) {
                    events.push((next.at, WorkloadEvent::Arrival));
                }
                t.type_idx as usize
            }
        };
        self.next_tid += 1;
        let ty = self.mix.types()[type_idx];
        for seq in 1..=ty.data_records {
            events.push((
                now + ty.data_write_offset(seq),
                WorkloadEvent::WriteData { tid, seq },
            ));
        }
        events.push((now + ty.duration, WorkloadEvent::WriteCommit { tid }));

        let updates = if self.track_updates {
            self.spare_updates.pop().unwrap_or_default()
        } else {
            Vec::new()
        };
        self.active.insert(
            tid,
            ActiveTxn {
                type_idx,
                started_at: now,
                updates,
                commit_written: None,
            },
        );
        self.stats.started += 1;
        self.stats.per_type_started[type_idx] += 1;
        self.stats.active.set(now, self.active.len() as u64);
        Some(NewTxn { tid, type_idx })
    }

    /// Handles a data-record write: picks the oid and returns it with the
    /// record size. Returns `None` when the transaction no longer exists
    /// (killed, and the cancellation raced this event).
    pub fn on_write_data(&mut self, now: SimTime, tid: Tid, seq: u32) -> Option<(Oid, u32)> {
        let txn = self.active.get_mut(&tid)?;
        debug_assert!(
            txn.commit_written.is_none(),
            "data write after commit for {tid}"
        );
        let oid = match &mut self.source {
            Source::Live {
                rng_oid,
                picker,
                capture,
                ..
            } => {
                let oid = picker.pick(rng_oid);
                if let Some(b) = capture {
                    b.on_write_data(tid.0 as usize, seq, oid);
                }
                oid
            }
            Source::Replay { trace } => {
                let t = &trace.txns[tid.0 as usize];
                let oid = trace.oids[t.oid_start as usize + seq as usize - 1];
                debug_assert_ne!(oid, UNWRITTEN, "replay delivered an unwritten slot");
                oid
            }
        };
        if self.track_updates {
            txn.updates.push(Update { oid, seq, ts: now });
        }
        self.stats.data_records += 1;
        let size = self.mix.types()[txn.type_idx].record_size;
        Some((oid, size))
    }

    /// Handles the COMMIT-record write (t3). Returns `false` when the
    /// transaction no longer exists.
    pub fn on_write_commit(&mut self, now: SimTime, tid: Tid) -> bool {
        match self.active.get_mut(&tid) {
            Some(txn) => {
                txn.commit_written = Some(now);
                true
            }
            None => false,
        }
    }

    /// Handles the commit acknowledgement (t4): the transaction's oids stop
    /// being "chosen by an active transaction", and its updates are
    /// returned so the caller can feed a committed-state oracle. The slice
    /// is valid until the next driver call (its storage is recycled); it
    /// is empty when updates are not tracked.
    pub fn on_commit_ack(&mut self, now: SimTime, tid: Tid) -> &[Update] {
        self.ack_buf.clear();
        let Some(txn) = self.active.remove(&tid) else {
            return &self.ack_buf;
        };
        if let Source::Live { picker, .. } = &mut self.source {
            picker.release_all(txn.updates.iter().map(|u| u.oid));
        }
        if let Some(t3) = txn.commit_written {
            self.stats
                .commit_latency_ms
                .record(now.saturating_sub(t3).as_micros() as f64 / 1000.0);
        }
        self.stats
            .full_latency_ms
            .record(now.saturating_sub(txn.started_at).as_micros() as f64 / 1000.0);
        self.stats.committed += 1;
        self.stats.active.set(now, self.active.len() as u64);
        if self.track_updates {
            // Hand the updates out through `ack_buf` and recycle the old
            // buffer, so steady-state acks allocate nothing.
            let old = std::mem::replace(&mut self.ack_buf, txn.updates);
            self.spare_updates.push(old);
        }
        &self.ack_buf
    }

    /// Handles a kill from the log manager: drops the transaction and
    /// releases its oids. The caller is responsible for cancelling the
    /// transaction's still-pending events.
    pub fn on_kill(&mut self, now: SimTime, tid: Tid) {
        if let Some(mut txn) = self.active.remove(&tid) {
            if let Source::Live { picker, .. } = &mut self.source {
                picker.release_all(txn.updates.iter().map(|u| u.oid));
            }
            if self.track_updates {
                txn.updates.clear();
                self.spare_updates.push(txn.updates);
            }
            self.stats.killed += 1;
            self.stats.active.set(now, self.active.len() as u64);
        }
    }

    /// Number of transactions currently between BEGIN and ack.
    pub fn active_txns(&self) -> usize {
        self.active.len()
    }

    /// The updates a live transaction has performed so far (empty when
    /// updates are not tracked).
    pub fn updates_of(&self, tid: Tid) -> Option<&[Update]> {
        self.active.get(&tid).map(|t| t.updates.as_slice())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// The oid picker (for diagnostics); `None` when replaying.
    pub fn picker(&self) -> Option<&OidPicker> {
        match &self.source {
            Source::Live { picker, .. } => Some(picker),
            Source::Replay { .. } => None,
        }
    }

    /// The configured mix.
    pub fn mix(&self) -> &TxMix {
        &self.mix
    }

    /// The arrival horizon (no arrivals at or after this time).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TxMix;

    fn driver(frac_long: f64, horizon_s: u64) -> WorkloadDriver {
        WorkloadDriver::new(
            TxMix::paper_mix(frac_long),
            ArrivalProcess::Deterministic { rate_tps: 100.0 },
            10_000_000,
            SimTime::from_secs(horizon_s),
            &SimRng::new(42),
        )
    }

    fn arrive(
        d: &mut WorkloadDriver,
        now: SimTime,
    ) -> Option<(NewTxn, Vec<(SimTime, WorkloadEvent)>)> {
        let mut events = Vec::new();
        d.on_arrival(now, &mut events).map(|new| (new, events))
    }

    #[test]
    fn arrival_produces_plan_and_schedule() {
        let mut d = driver(0.0, 10);
        let boot = d.bootstrap(SimTime::ZERO);
        assert_eq!(boot, vec![(SimTime::ZERO, WorkloadEvent::Arrival)]);

        let (new, events) = arrive(&mut d, SimTime::ZERO).unwrap();
        assert_eq!(new.tid, Tid(0));
        assert_eq!(new.type_idx, 0, "frac_long 0 ⇒ always short type");
        // Short type: 2 data writes + 1 commit + next arrival.
        assert_eq!(events.len(), 4);
        let commit_at = events
            .iter()
            .find_map(|(t, e)| matches!(e, WorkloadEvent::WriteCommit { .. }).then_some(*t))
            .unwrap();
        assert_eq!(commit_at, SimTime::from_secs(1));
        let last_data = events
            .iter()
            .filter_map(|(t, e)| matches!(e, WorkloadEvent::WriteData { seq: 2, .. }).then_some(*t))
            .next()
            .unwrap();
        assert_eq!(
            commit_at.saturating_sub(last_data),
            SimTime::from_millis(1),
            "ε gap"
        );
        // Next arrival 10 ms later (100 TPS).
        assert!(events.contains(&(SimTime::from_millis(10), WorkloadEvent::Arrival)));
    }

    #[test]
    fn horizon_stops_arrivals() {
        let mut d = driver(0.0, 1);
        // Arrival exactly at the horizon is rejected.
        assert!(arrive(&mut d, SimTime::from_secs(1)).is_none());
        // An arrival just before the horizon happens but does not chain a
        // next arrival past it.
        let (_, events) = arrive(&mut d, SimTime::from_micros(999_999)).unwrap();
        assert!(!events.iter().any(|(_, e)| *e == WorkloadEvent::Arrival));
    }

    #[test]
    fn full_transaction_lifecycle() {
        let mut d = driver(0.0, 10);
        let (new, _) = arrive(&mut d, SimTime::ZERO).unwrap();
        let tid = new.tid;

        let (oid1, size) = d.on_write_data(SimTime::from_millis(500), tid, 1).unwrap();
        assert_eq!(size, 100);
        let (oid2, _) = d.on_write_data(SimTime::from_millis(999), tid, 2).unwrap();
        assert_ne!(oid1, oid2, "same txn never reuses an oid");
        assert!(d.picker().unwrap().is_held(oid1));

        assert!(d.on_write_commit(SimTime::from_secs(1), tid));
        let updates = d.on_commit_ack(SimTime::from_micros(1_030_000), tid);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].oid, oid1);
        assert!(!d.picker().unwrap().is_held(oid1), "ack releases oids");
        assert_eq!(d.stats().committed, 1);
        assert_eq!(d.stats().commit_latency_ms.total(), 1);
        // ~30 ms latency recorded.
        assert!(d.stats().commit_latency_ms.max().unwrap() >= 30.0);
        // Whole-transaction latency spans arrival → ack: 1.03 s here.
        assert_eq!(d.stats().full_latency_ms.total(), 1);
        assert!((d.stats().full_latency_ms.max().unwrap() - 1030.0).abs() < 1e-6);
    }

    #[test]
    fn kill_releases_and_counts() {
        let mut d = driver(0.0, 10);
        let (new, _) = arrive(&mut d, SimTime::ZERO).unwrap();
        let (oid, _) = d
            .on_write_data(SimTime::from_millis(1), new.tid, 1)
            .unwrap();
        d.on_kill(SimTime::from_millis(2), new.tid);
        assert!(!d.picker().unwrap().is_held(oid));
        assert_eq!(d.stats().killed, 1);
        assert_eq!(d.active_txns(), 0);
        // Stray events for the dead txn are ignored gracefully.
        assert!(d
            .on_write_data(SimTime::from_millis(3), new.tid, 2)
            .is_none());
        assert!(!d.on_write_commit(SimTime::from_millis(4), new.tid));
        assert!(d.on_commit_ack(SimTime::from_millis(5), new.tid).is_empty());
        assert_eq!(d.stats().killed, 1, "double kill not counted");
        d.on_kill(SimTime::from_millis(6), new.tid);
        assert_eq!(d.stats().killed, 1);
    }

    #[test]
    fn tids_are_dense_and_unique() {
        let mut d = driver(0.5, 100);
        let mut t = SimTime::ZERO;
        for i in 0..50 {
            let (new, _) = arrive(&mut d, t).unwrap();
            assert_eq!(new.tid, Tid(i));
            t += SimTime::from_millis(10);
        }
        assert_eq!(d.stats().started, 50);
        assert_eq!(d.active_txns(), 50);
        assert_eq!(d.stats().active.peak(), 50);
    }

    #[test]
    fn per_type_counts_follow_pdf() {
        let mut d = driver(0.3, 1_000_000);
        let mut t = SimTime::ZERO;
        let mut events = Vec::new();
        for _ in 0..20_000 {
            d.on_arrival(t, &mut events).unwrap();
            t += SimTime::from_millis(10);
        }
        let frac = d.stats().per_type_started[1] as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "long fraction {frac}");
    }

    #[test]
    fn updates_of_live_txn_visible() {
        let mut d = driver(0.0, 10);
        let (new, _) = arrive(&mut d, SimTime::ZERO).unwrap();
        assert_eq!(d.updates_of(new.tid).unwrap().len(), 0);
        d.on_write_data(SimTime::from_millis(1), new.tid, 1);
        assert_eq!(d.updates_of(new.tid).unwrap().len(), 1);
        assert!(d.updates_of(Tid(999)).is_none());
    }

    /// Drives `d` through its full event stream with a tiny hand-rolled
    /// event loop (no log manager: acks fire one ε after the commit
    /// write), returning the committed count.
    fn drain(d: &mut WorkloadDriver) -> (u64, Vec<Oid>) {
        let mut queue: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, Tid, u32)>> =
            std::collections::BinaryHeap::new();
        // Kind: 0 arrival, 1 data, 2 commit, 3 ack.
        let mut events = Vec::new();
        let mut oids = Vec::new();
        queue.push(std::cmp::Reverse((SimTime::ZERO, 0, Tid(0), 0)));
        while let Some(std::cmp::Reverse((now, kind, tid, seq))) = queue.pop() {
            match kind {
                0 => {
                    if let Some(new) = d.on_arrival(now, &mut events) {
                        for &(at, ev) in &events {
                            let (k, t, s) = match ev {
                                WorkloadEvent::Arrival => (0, Tid(0), 0),
                                WorkloadEvent::WriteData { tid, seq } => (1, tid, seq),
                                WorkloadEvent::WriteCommit { tid } => (2, tid, 0),
                            };
                            queue.push(std::cmp::Reverse((at, k, t, s)));
                        }
                        let _ = new;
                    }
                }
                1 => {
                    if let Some((oid, _)) = d.on_write_data(now, tid, seq) {
                        oids.push(oid);
                    }
                }
                2 => {
                    if d.on_write_commit(now, tid) {
                        queue.push(std::cmp::Reverse((
                            now + SimTime::from_millis(1),
                            3,
                            tid,
                            0,
                        )));
                    }
                }
                _ => {
                    d.on_commit_ack(now, tid);
                }
            }
        }
        (d.stats().committed, oids)
    }

    #[test]
    fn replay_reproduces_capture_exactly() {
        let mut live = driver(0.3, 5);
        live.enable_capture();
        let (live_committed, live_oids) = drain(&mut live);
        let trace = live.take_trace().expect("kill-free capture");
        assert_eq!(trace.transactions() as u64, live.stats().started);

        let mut rep = WorkloadDriver::replay(TxMix::paper_mix(0.3), Arc::new(trace), true);
        assert!(rep.picker().is_none());
        let (rep_committed, rep_oids) = drain(&mut rep);
        assert_eq!(live_committed, rep_committed);
        assert_eq!(live_oids, rep_oids, "oid stream must replay exactly");
        assert_eq!(live.stats().started, rep.stats().started);
        assert_eq!(live.stats().data_records, rep.stats().data_records);
        assert_eq!(live.stats().per_type_started, rep.stats().per_type_started);
    }

    #[test]
    fn untracked_replay_acks_empty() {
        let mut live = driver(0.0, 2);
        live.enable_capture();
        drain(&mut live);
        let trace = Arc::new(live.take_trace().unwrap());
        let mut rep = WorkloadDriver::replay(TxMix::paper_mix(0.0), trace, false);
        let (new, _) = arrive(&mut rep, SimTime::ZERO).unwrap();
        rep.on_write_data(SimTime::from_millis(500), new.tid, 1);
        assert_eq!(rep.updates_of(new.tid).unwrap().len(), 0, "not tracked");
        rep.on_write_commit(SimTime::from_secs(1), new.tid);
        assert!(rep
            .on_commit_ack(SimTime::from_micros(1_030_000), new.tid)
            .is_empty());
        assert_eq!(rep.stats().committed, 1);
    }

    #[test]
    #[should_panic(expected = "invalid arrival process")]
    fn invalid_arrival_config_rejected_at_construction() {
        // Regression: a MarkovBursty config with rate × dwell < 1 used to
        // be accepted and silently distorted at draw time; the driver now
        // validates at its single construction chokepoint.
        let _ = WorkloadDriver::new(
            TxMix::paper_mix(0.1),
            ArrivalProcess::MarkovBursty {
                base_tps: 2.0,
                burst_tps: 500.0,
                mean_dwell_s: 0.1,
                in_burst: false,
            },
            10_000_000,
            SimTime::from_secs(10),
            &SimRng::new(1),
        );
    }

    #[test]
    fn phase_schedule_shifts_mix_and_rate() {
        use crate::spec::{Phase, PhaseSchedule};
        // Phase 0 (0–10 s): all-short at base rate. Phase 1 (10 s+):
        // all-long at 2× rate.
        let schedule = PhaseSchedule::new(vec![
            Phase {
                start: SimTime::ZERO,
                mix: TxMix::paper_mix(0.0),
                rate_factor: 1.0,
            },
            Phase {
                start: SimTime::from_secs(10),
                mix: TxMix::paper_mix(1.0),
                rate_factor: 2.0,
            },
        ])
        .unwrap();
        let mut d = WorkloadDriver::new(
            TxMix::paper_mix(0.5),
            ArrivalProcess::Deterministic { rate_tps: 100.0 },
            10_000_000,
            SimTime::from_secs(20),
            &SimRng::new(42),
        )
        .with_phases(Some(schedule));

        let mut events = Vec::new();
        // Phase 0: every arrival is the short type, arrivals 10 ms apart.
        let new = d.on_arrival(SimTime::ZERO, &mut events).unwrap();
        assert_eq!(new.type_idx, 0);
        assert!(events.contains(&(SimTime::from_millis(10), WorkloadEvent::Arrival)));
        // Phase 1: every arrival is the long type, arrivals 5 ms apart
        // (deterministic 100 TPS at factor 2).
        let new = d.on_arrival(SimTime::from_secs(10), &mut events).unwrap();
        assert_eq!(new.type_idx, 1);
        let next = events
            .iter()
            .find_map(|&(t, e)| (e == WorkloadEvent::Arrival).then_some(t))
            .unwrap();
        assert_eq!(next, SimTime::from_secs(10) + SimTime::from_millis(5));
    }

    #[test]
    fn phased_capture_replays_without_schedule() {
        use crate::spec::PhaseSchedule;
        // A drifting capture replayed by a schedule-less replay driver
        // must reproduce the stream exactly: the trace's type indices and
        // arrival times already encode the phases.
        let schedule = PhaseSchedule::parse("0:0.0,2:1.0@2").unwrap();
        let mut live = WorkloadDriver::new(
            TxMix::paper_mix(0.5),
            ArrivalProcess::Deterministic { rate_tps: 50.0 },
            10_000_000,
            SimTime::from_secs(4),
            &SimRng::new(7),
        )
        .with_phases(Some(schedule));
        live.enable_capture();
        let (live_committed, live_oids) = drain(&mut live);
        let trace = live.take_trace().expect("kill-free capture");

        let mut rep = WorkloadDriver::replay(TxMix::paper_mix(0.5), Arc::new(trace), true);
        let (rep_committed, rep_oids) = drain(&mut rep);
        assert_eq!(live_committed, rep_committed);
        assert_eq!(live_oids, rep_oids);
        assert_eq!(live.stats().per_type_started, rep.stats().per_type_started);
        // The drift is visible: both phases produced transactions.
        assert!(live.stats().per_type_started.iter().all(|&n| n > 0));
        // And the 2× phase really accelerated arrivals: 2 s at 50 TPS +
        // 2 s at 100 TPS ≈ 300 starts, not 200.
        assert!(
            live.stats().started > 250,
            "rate factor must raise arrivals, got {}",
            live.stats().started
        );
    }

    #[test]
    #[should_panic(expected = "replay")]
    fn replay_driver_rejects_schedule() {
        use crate::spec::PhaseSchedule;
        let mut live = driver(0.0, 1);
        live.enable_capture();
        drain(&mut live);
        let trace = Arc::new(live.take_trace().unwrap());
        let _ = WorkloadDriver::replay(TxMix::paper_mix(0.0), trace, false)
            .with_phases(Some(PhaseSchedule::parse("0:0.0").unwrap()));
    }

    #[test]
    fn killed_capture_yields_no_trace() {
        let mut d = driver(0.0, 10);
        d.enable_capture();
        let (new, _) = arrive(&mut d, SimTime::ZERO).unwrap();
        d.on_kill(SimTime::from_millis(1), new.tid);
        assert!(d.take_trace().is_none(), "killed run is truncated");
    }
}
