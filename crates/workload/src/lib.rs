#![warn(missing_docs)]

//! Transaction workload generation (§3 of the paper, Figure 3).
//!
//! The user of the paper's simulator specifies "an arbitrary number of
//! different transaction types and their probability distribution function
//! (pdf). For each type of transaction, the user states the probability of
//! occurrence, the duration of execution, the number of data log records
//! written and the size of each data log record."
//!
//! The lifecycle of one transaction (Figure 3):
//!
//! ```text
//! t0           t1      ...      t2   t3      t4
//! BEGIN        data1         dataN   COMMIT  ack
//! |<------------- T = duration ----->|
//!                        |<-- ε -->|          (ε = 1 ms, fixed)
//! ```
//!
//! Data records are written at equal spacings of (T−ε)/N after `t0`; the
//! COMMIT record is written T after `t0`; the transaction then waits for the
//! group-commit acknowledgement, which arrives when the buffer holding its
//! COMMIT record becomes durable.
//!
//! Modules:
//! * [`spec`] — transaction types and mixes, including the paper's standard
//!   two-type mix;
//! * [`arrival`] — deterministic fixed-interval arrivals (the paper's
//!   choice) plus a Poisson extension;
//! * [`oidpick`] — uniform oid selection "subject to the constraint that
//!   the number has not already been chosen for an update by a transaction
//!   which is still active";
//! * [`driver`] — the event-producing driver gluing it all together;
//! * [`trace`] — flat capture/replay of the workload-visible event stream,
//!   so geometry probes skip the RNG-driven generator entirely.

pub mod arrival;
pub mod driver;
pub mod oidpick;
pub mod spec;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use driver::{WorkloadDriver, WorkloadEvent, WorkloadStats};
pub use oidpick::OidPicker;
pub use spec::{Phase, PhaseSchedule, TxMix, TxType, EPSILON};
pub use trace::WorkloadTrace;
