//! Object-id selection.
//!
//! §3: "Whenever a transaction writes a data log record, we randomly pick
//! some integer for the oid, subject to the constraint that the number has
//! not already been chosen for an update by a transaction which is still
//! active. The set of integers from which an oid can be chosen consists of
//! all integers from 0 up to NUM_OBJECTS−1."
//!
//! With NUM_OBJECTS = 10^7 and a few hundred concurrently held oids,
//! rejection sampling almost never rejects; the picker counts rejections so
//! pathological configurations (tiny object counts) are visible in stats.

use elog_model::Oid;
use elog_sim::{FxHashSet, SimRng};

/// Uniform oid picker excluding oids held by active transactions.
#[derive(Clone, Debug)]
pub struct OidPicker {
    num_objects: u64,
    /// Held-oid membership set. FxHash rather than SipHash: the set is
    /// probed twice per data record (pick + release) and never iterated,
    /// so ordering robustness buys nothing and hashing speed is the cost.
    in_use: FxHashSet<Oid>,
    rejections: u64,
    picks: u64,
    double_releases: u64,
}

impl OidPicker {
    /// Creates a picker over `[0, num_objects)`.
    pub fn new(num_objects: u64) -> Self {
        assert!(num_objects > 0);
        OidPicker {
            num_objects,
            in_use: FxHashSet::default(),
            rejections: 0,
            picks: 0,
            double_releases: 0,
        }
    }

    /// Picks a fresh oid and marks it held.
    ///
    /// # Panics
    /// Panics when every object is already held (the workload would
    /// deadlock; with the paper's parameters this is unreachable).
    pub fn pick(&mut self, rng: &mut SimRng) -> Oid {
        assert!(
            (self.in_use.len() as u64) < self.num_objects,
            "all {} objects held by active transactions",
            self.num_objects
        );
        self.picks += 1;
        loop {
            let oid = Oid(rng.next_u64_below(self.num_objects));
            if self.in_use.insert(oid) {
                return oid;
            }
            self.rejections += 1;
        }
    }

    /// Releases one oid (its transaction is no longer active).
    ///
    /// Returns `false` when the oid was not held — a sign of double-release
    /// bugs, surfaced rather than silently ignored.
    pub fn release(&mut self, oid: Oid) -> bool {
        self.in_use.remove(&oid)
    }

    /// Releases many oids at once (commit/abort of a whole transaction).
    ///
    /// Releasing an oid that is not held is a driver bug; like
    /// [`OidPicker::release`]'s `false` return it is surfaced rather than
    /// silently ignored — each occurrence is counted in
    /// [`OidPicker::double_releases`], in every build profile.
    pub fn release_all<I: IntoIterator<Item = Oid>>(&mut self, oids: I) {
        for oid in oids {
            if !self.release(oid) {
                self.double_releases += 1;
            }
        }
    }

    /// Oids currently held.
    pub fn held(&self) -> usize {
        self.in_use.len()
    }

    /// True when `oid` is currently held.
    pub fn is_held(&self, oid: Oid) -> bool {
        self.in_use.contains(&oid)
    }

    /// Total picks served.
    pub fn picks(&self) -> u64 {
        self.picks
    }

    /// Total rejection-sampling retries (collisions with held oids).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Total releases of oids that were not held, observed by
    /// [`OidPicker::release_all`]. Non-zero means a double-release bug in
    /// the driver; a healthy run reports 0.
    pub fn double_releases(&self) -> u64 {
        self.double_releases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn picks_are_unique_while_held() {
        let mut p = OidPicker::new(1000);
        let mut rng = SimRng::new(5);
        let picked: Vec<Oid> = (0..500).map(|_| p.pick(&mut rng)).collect();
        let uniq: HashSet<_> = picked.iter().collect();
        assert_eq!(uniq.len(), 500);
        assert_eq!(p.held(), 500);
        assert_eq!(p.picks(), 500);
    }

    #[test]
    fn release_allows_reuse() {
        let mut p = OidPicker::new(2);
        let mut rng = SimRng::new(6);
        let a = p.pick(&mut rng);
        let b = p.pick(&mut rng);
        assert_ne!(a, b);
        assert!(p.release(a));
        let c = p.pick(&mut rng);
        assert_eq!(c, a, "only one oid was free");
    }

    #[test]
    fn double_release_reports_false() {
        let mut p = OidPicker::new(10);
        let mut rng = SimRng::new(7);
        let a = p.pick(&mut rng);
        assert!(p.release(a));
        assert!(!p.release(a));
        assert!(!p.release(Oid(9_999)));
    }

    #[test]
    fn release_all_clears() {
        let mut p = OidPicker::new(100);
        let mut rng = SimRng::new(8);
        let oids: Vec<Oid> = (0..10).map(|_| p.pick(&mut rng)).collect();
        p.release_all(oids);
        assert_eq!(p.held(), 0);
        assert_eq!(p.double_releases(), 0);
    }

    #[test]
    fn release_all_counts_double_releases() {
        // Regression: release_all used to check double-releases with a
        // debug_assert! only, so release builds swallowed them silently in
        // contradiction of release()'s documented contract. They are now
        // counted unconditionally.
        let mut p = OidPicker::new(100);
        let mut rng = SimRng::new(12);
        let a = p.pick(&mut rng);
        let b = p.pick(&mut rng);
        p.release_all([a, b]);
        assert_eq!(p.double_releases(), 0);
        // Release the same pair again, plus one never-held oid.
        p.release_all([a, b, Oid(99)]);
        assert_eq!(p.double_releases(), 3);
        assert_eq!(p.held(), 0);
        // Direct release() keeps its boolean contract and does not count.
        assert!(!p.release(a));
        assert_eq!(p.double_releases(), 3);
    }

    #[test]
    fn rejections_counted_under_pressure() {
        let mut p = OidPicker::new(16);
        let mut rng = SimRng::new(9);
        for _ in 0..15 {
            p.pick(&mut rng);
        }
        // Repeatedly pick the single free slot: each pick succeeds on a
        // given draw with probability 1/16, so 50 picks without a single
        // rejection has probability (1/16)^50 — effectively impossible.
        for _ in 0..50 {
            let last = p.pick(&mut rng);
            assert!(p.is_held(last));
            p.release(last);
        }
        assert!(p.rejections() > 0, "tight space must show rejections");
    }

    #[test]
    #[should_panic]
    fn exhaustion_panics() {
        let mut p = OidPicker::new(1);
        let mut rng = SimRng::new(10);
        p.pick(&mut rng);
        p.pick(&mut rng);
    }

    #[test]
    fn uniformity_rough_check() {
        let mut p = OidPicker::new(10);
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            let o = p.pick(&mut rng);
            counts[o.get() as usize] += 1;
            p.release(o);
        }
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "skewed bucket: {c}");
        }
    }
}
