//! Transaction types and mixes.

use elog_sim::{SimRng, SimTime};
use std::fmt;

/// The fixed gap between a transaction's last data record and its COMMIT
/// record. §3: "The delay ε between the writes for the last data log record
/// and the COMMIT tx log record for a transaction is fixed at 1 ms."
pub const EPSILON: SimTime = SimTime::from_millis(1);

/// One transaction type from the workload pdf.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TxType {
    /// Probability of occurrence, in `[0, 1]`.
    pub probability: f64,
    /// Execution duration T (begin to commit-record write).
    pub duration: SimTime,
    /// Number of data log records written (N in Figure 3).
    pub data_records: u32,
    /// Accounting size of each data record, in bytes.
    pub record_size: u32,
}

impl TxType {
    /// Time of the `seq`-th (1-based) data-record write, relative to t0.
    ///
    /// Records are evenly spaced: record j is written at j·(T−ε)/N, so the
    /// last lands exactly ε before the COMMIT record.
    pub fn data_write_offset(&self, seq: u32) -> SimTime {
        debug_assert!(seq >= 1 && seq <= self.data_records);
        let span = self.duration.saturating_sub(EPSILON);
        span * u64::from(seq) / u64::from(self.data_records)
    }

    /// Validation: positive probability-compatible fields.
    fn validate(&self, idx: usize) -> Result<(), MixError> {
        if !(0.0..=1.0).contains(&self.probability) || !self.probability.is_finite() {
            return Err(MixError(format!(
                "type {idx}: probability must be in [0,1]"
            )));
        }
        if self.duration <= EPSILON {
            return Err(MixError(format!(
                "type {idx}: duration must exceed ε (1 ms)"
            )));
        }
        if self.data_records == 0 {
            return Err(MixError(format!(
                "type {idx}: needs at least one data record"
            )));
        }
        if self.record_size == 0 {
            return Err(MixError(format!(
                "type {idx}: record size must be positive"
            )));
        }
        Ok(())
    }
}

/// A validated probability mix of transaction types.
#[derive(Clone, Debug, PartialEq)]
pub struct TxMix {
    types: Vec<TxType>,
    /// Cumulative probabilities for sampling.
    cdf: Vec<f64>,
}

impl TxMix {
    /// Builds a mix, validating that probabilities sum to 1 (±1e-9).
    pub fn new(types: Vec<TxType>) -> Result<Self, MixError> {
        if types.is_empty() {
            return Err(MixError("a mix needs at least one transaction type".into()));
        }
        let mut cdf = Vec::with_capacity(types.len());
        let mut acc = 0.0;
        for (i, t) in types.iter().enumerate() {
            t.validate(i)?;
            acc += t.probability;
            cdf.push(acc);
        }
        if (acc - 1.0).abs() > 1e-9 {
            return Err(MixError(format!("probabilities sum to {acc}, expected 1")));
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(TxMix { types, cdf })
    }

    /// The paper's standard two-type workload: a fraction `frac_long` of
    /// transactions last 10 s and write 4 × 100 B data records; the rest
    /// last 1 s and write 2 × 100 B records (§4).
    pub fn paper_mix(frac_long: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac_long));
        TxMix::new(vec![
            TxType {
                probability: 1.0 - frac_long,
                duration: SimTime::from_secs(1),
                data_records: 2,
                record_size: 100,
            },
            TxType {
                probability: frac_long,
                duration: SimTime::from_secs(10),
                data_records: 4,
                record_size: 100,
            },
        ])
        .expect("paper mix is always valid")
    }

    /// The transaction types.
    pub fn types(&self) -> &[TxType] {
        &self.types
    }

    /// Draws a type index according to the pdf.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.types.len() - 1)
    }

    /// Expected data records per transaction.
    pub fn mean_updates_per_txn(&self) -> f64 {
        self.types
            .iter()
            .map(|t| t.probability * f64::from(t.data_records))
            .sum()
    }

    /// Expected object-update rate at `tps` arrivals per second.
    ///
    /// §4: at 100 TPS this rises from 210/s (5 % long) to 280/s (40 %).
    pub fn mean_update_rate(&self, tps: f64) -> f64 {
        tps * self.mean_updates_per_txn()
    }

    /// Expected log payload bytes per second at `tps` arrivals, counting
    /// data records plus BEGIN and COMMIT records of `tx_record_size` each.
    pub fn mean_log_bytes_per_sec(&self, tps: f64, tx_record_size: u32) -> f64 {
        let data: f64 = self
            .types
            .iter()
            .map(|t| t.probability * f64::from(t.data_records) * f64::from(t.record_size))
            .sum();
        tps * (data + 2.0 * f64::from(tx_record_size))
    }

    /// Byte-weighted fraction of freshly written log bytes still *live*
    /// (their transaction not yet committed) `age_secs` after their write —
    /// the `g(age)` curve of the §4 steady-state balance (see
    /// `elog_model::rates`).
    ///
    /// A type-`t` transaction's `j`-th data record is written at offset
    /// `o_j` and stays live until the COMMIT request at `T`, so it
    /// survives age `a` iff `T − o_j > a`; its BEGIN record (of
    /// `tx_record_size` bytes) lives the full `T`; its COMMIT record dies
    /// immediately. The fraction weighs each record by its size and each
    /// type by its probability.
    pub fn live_byte_fraction(&self, tx_record_size: u32, age_secs: f64) -> f64 {
        let (live, total) = self.live_byte_sums(tx_record_size, age_secs);
        if total <= 0.0 {
            0.0
        } else {
            live / total
        }
    }

    /// Byte-weighted mean *remaining* life (seconds) of the bytes still
    /// live at `age_secs` — how much longer the surviving cohort must be
    /// retained. Zero when nothing survives.
    pub fn mean_remaining_life(&self, tx_record_size: u32, age_secs: f64) -> f64 {
        let mut weighted = 0.0;
        let mut live = 0.0;
        for t in &self.types {
            let dur = t.duration.as_secs_f64();
            for j in 1..=t.data_records {
                let life = dur - t.data_write_offset(j).as_secs_f64();
                if life > age_secs {
                    let w = t.probability * f64::from(t.record_size);
                    weighted += w * (life - age_secs);
                    live += w;
                }
            }
            if dur > age_secs {
                let w = t.probability * f64::from(tx_record_size);
                weighted += w * (dur - age_secs);
                live += w;
            }
        }
        if live <= 0.0 {
            0.0
        } else {
            weighted / live
        }
    }

    fn live_byte_sums(&self, tx_record_size: u32, age_secs: f64) -> (f64, f64) {
        let mut live = 0.0;
        let mut total = 0.0;
        for t in &self.types {
            let dur = t.duration.as_secs_f64();
            for j in 1..=t.data_records {
                let w = t.probability * f64::from(t.record_size);
                total += w;
                if dur - t.data_write_offset(j).as_secs_f64() > age_secs {
                    live += w;
                }
            }
            // BEGIN lives until the commit request; COMMIT dies at once.
            let w = t.probability * f64::from(tx_record_size);
            total += 2.0 * w;
            if dur > age_secs {
                live += w;
            }
        }
        (live, total)
    }

    /// Expected concurrently active transactions (Little's law: tps · E[T]).
    pub fn mean_active_txns(&self, tps: f64) -> f64 {
        tps * self
            .types
            .iter()
            .map(|t| t.probability * t.duration.as_secs_f64())
            .sum::<f64>()
    }
}

/// One segment of a piecewise workload schedule.
///
/// From `start` (inclusive) until the next phase's start, live arrivals
/// sample `mix` and the arrival process runs at `rate_factor` × its
/// configured rate (inter-arrival gaps divided by the factor).
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// When this phase begins (the first phase must start at 0).
    pub start: SimTime,
    /// The mix sampled while the phase is active.
    pub mix: TxMix,
    /// Arrival-rate multiplier (> 0; 1.0 leaves the base process alone).
    pub rate_factor: f64,
}

/// A piecewise update-mix/rate schedule over the run horizon — the
/// drifting-workload axis the adaptive controller (`core::adaptive`) reacts
/// to, e.g. long-transaction fraction 0.1 → 0.4 → 0.1 over the run.
///
/// Phases may change only the *probabilities* over a shared transaction
/// type table plus a rate factor; durations, record counts and record
/// sizes must be identical across phases. This keeps every type index
/// meaningful for the whole run, which is what lets trace capture store a
/// bare `type_idx` per transaction and replay remain phase-faithful with
/// no schedule attached (replay reads the recorded indices and recorded
/// arrival times, both already shaped by the schedule).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// Builds a schedule. Phases must be non-empty, start at 0, have
    /// strictly increasing start times, positive finite rate factors, and
    /// share one transaction-type shape (see the type-level docs).
    pub fn new(phases: Vec<Phase>) -> Result<Self, MixError> {
        let first = phases
            .first()
            .ok_or_else(|| MixError("a schedule needs at least one phase".into()))?;
        if first.start != SimTime::ZERO {
            return Err(MixError(format!(
                "the first phase must start at 0, not {:?}",
                first.start
            )));
        }
        for (i, p) in phases.iter().enumerate() {
            if !p.rate_factor.is_finite() || p.rate_factor <= 0.0 {
                return Err(MixError(format!(
                    "phase {i}: rate factor must be positive and finite, got {}",
                    p.rate_factor
                )));
            }
            if i > 0 {
                if p.start <= phases[i - 1].start {
                    return Err(MixError(format!(
                        "phase {i}: start times must be strictly increasing"
                    )));
                }
                if !same_type_shape(&first.mix, &p.mix) {
                    return Err(MixError(format!(
                        "phase {i}: all phases must share one transaction \
                         type table (same durations, record counts and \
                         sizes; only probabilities and rate may change)"
                    )));
                }
            }
        }
        Ok(PhaseSchedule { phases })
    }

    /// A schedule over the paper's standard two-type workload: each
    /// `(start_secs, frac_long)` point switches to `paper_mix(frac_long)`
    /// at rate factor 1.
    pub fn paper(points: &[(u64, f64)]) -> Self {
        PhaseSchedule::new(
            points
                .iter()
                .map(|&(start, frac)| Phase {
                    start: SimTime::from_secs(start),
                    mix: TxMix::paper_mix(frac),
                    rate_factor: 1.0,
                })
                .collect(),
        )
        .expect("paper schedules share the paper type table")
    }

    /// Parses the CLI syntax `start:frac_long[@rate],...` over the paper
    /// mix — e.g. `0:0.1,160:0.4,330:0.1` or `0:0.05@1,20:0.05@2`.
    /// Starts are seconds (fractional allowed).
    pub fn parse(s: &str) -> Result<Self, MixError> {
        let mut phases = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (start, rest) = part
                .split_once(':')
                .ok_or_else(|| MixError(format!("phase `{part}`: expected start:frac[@rate]")))?;
            let start: f64 = start
                .parse()
                .map_err(|_| MixError(format!("phase `{part}`: bad start time")))?;
            if !start.is_finite() || start < 0.0 {
                return Err(MixError(format!("phase `{part}`: bad start time")));
            }
            let (frac, rate) = match rest.split_once('@') {
                Some((f, r)) => {
                    let rate: f64 = r
                        .parse()
                        .map_err(|_| MixError(format!("phase `{part}`: bad rate factor")))?;
                    (f, rate)
                }
                None => (rest, 1.0),
            };
            let frac: f64 = frac
                .parse()
                .map_err(|_| MixError(format!("phase `{part}`: bad long fraction")))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(MixError(format!(
                    "phase `{part}`: long fraction must be in [0,1]"
                )));
            }
            phases.push(Phase {
                start: SimTime::from_secs_f64(start),
                mix: TxMix::paper_mix(frac),
                rate_factor: rate,
            });
        }
        PhaseSchedule::new(phases)
    }

    /// The phases, ascending by start time.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The phase active at `now` (the last phase whose start is ≤ `now`).
    pub fn phase_at(&self, now: SimTime) -> &Phase {
        let idx = self.phases.partition_point(|p| p.start <= now);
        // idx ≥ 1 because phase 0 starts at 0.
        &self.phases[idx.saturating_sub(1).min(self.phases.len() - 1)]
    }

    /// True when `base` shares this schedule's transaction type table —
    /// required of the driver's base mix so type indices stay stable.
    pub fn matches_types(&self, base: &TxMix) -> bool {
        same_type_shape(&self.phases[0].mix, base)
    }
}

/// Shape compatibility: same type count and identical per-type duration,
/// record count and record size (probabilities are free to differ).
fn same_type_shape(a: &TxMix, b: &TxMix) -> bool {
    a.types().len() == b.types().len()
        && a.types().iter().zip(b.types()).all(|(x, y)| {
            x.duration == y.duration
                && x.data_records == y.data_records
                && x.record_size == y.record_size
        })
}

/// Mix-validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixError(String);

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transaction mix: {}", self.0)
    }
}

impl std::error::Error for MixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_statistics() {
        let mix = TxMix::paper_mix(0.05);
        // 0.95·2 + 0.05·4 = 2.1 updates per txn → 210/s at 100 TPS.
        assert!((mix.mean_update_rate(100.0) - 210.0).abs() < 1e-9);
        let mix40 = TxMix::paper_mix(0.40);
        assert!((mix40.mean_update_rate(100.0) - 280.0).abs() < 1e-9);
        // Active txns at 5 %: 100·(0.95·1 + 0.05·10) = 145.
        assert!((mix.mean_active_txns(100.0) - 145.0).abs() < 1e-9);
    }

    #[test]
    fn log_byte_rate() {
        let mix = TxMix::paper_mix(0.05);
        // data 210·100 + tx 2·100·8 = 22 600 B/s.
        assert!((mix.mean_log_bytes_per_sec(100.0, 8) - 22_600.0).abs() < 1e-9);
    }

    #[test]
    fn data_write_offsets_match_figure3() {
        let t = TxType {
            probability: 1.0,
            duration: SimTime::from_secs(10),
            data_records: 4,
            record_size: 100,
        };
        // span = 9.999 s; record 4 lands ε before commit.
        assert_eq!(t.data_write_offset(4), SimTime::from_millis(9_999));
        assert_eq!(t.data_write_offset(1), SimTime::from_micros(9_999_000 / 4));
        assert!(t.data_write_offset(1) < t.data_write_offset(2));
    }

    #[test]
    fn live_byte_fraction_is_monotone_and_bounded() {
        let mix = TxMix::paper_mix(0.05);
        let g0 = mix.live_byte_fraction(8, 0.0);
        // COMMIT bytes are dead on arrival, everything else lives.
        assert!(g0 > 0.9 && g0 < 1.0, "g(0) = {g0}");
        let mut prev = g0;
        for age in [0.2, 0.5, 0.9, 1.5, 5.0, 9.0, 11.0] {
            let g = mix.live_byte_fraction(8, age);
            assert!(g <= prev + 1e-12, "g must not increase: {g} after {prev}");
            assert!((0.0..=1.0).contains(&g));
            prev = g;
        }
        // Past every duration nothing survives.
        assert_eq!(mix.live_byte_fraction(8, 11.0), 0.0);
        // Between 1 s and 10 s only long-transaction bytes survive.
        let mid = mix.live_byte_fraction(8, 2.0);
        assert!(mid > 0.0 && mid < 0.2, "long tail only: {mid}");
    }

    #[test]
    fn mean_remaining_life_shrinks_with_age() {
        let mix = TxMix::paper_mix(0.05);
        let fresh = mix.mean_remaining_life(8, 0.0);
        assert!(fresh > 0.0);
        // Conditioning on surviving 2 s selects the 10 s transactions, so
        // the conditional remaining life *rises* vs the fresh mix…
        let aged = mix.mean_remaining_life(8, 2.0);
        assert!(aged > fresh);
        // …but within the surviving cohort it decays with age.
        assert!(mix.mean_remaining_life(8, 8.0) < aged);
        assert_eq!(mix.mean_remaining_life(8, 11.0), 0.0);
    }

    #[test]
    fn sampling_respects_pdf() {
        let mix = TxMix::paper_mix(0.25);
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let long = (0..n).filter(|_| mix.sample(&mut rng) == 1).count();
        let frac = long as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn degenerate_single_type_mix() {
        let mix = TxMix::new(vec![TxType {
            probability: 1.0,
            duration: SimTime::from_secs(1),
            data_records: 1,
            record_size: 50,
        }])
        .unwrap();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), 0);
        }
    }

    #[test]
    fn validation_failures() {
        assert!(TxMix::new(vec![]).is_err());

        let bad_sum = TxMix::new(vec![TxType {
            probability: 0.5,
            duration: SimTime::from_secs(1),
            data_records: 1,
            record_size: 1,
        }]);
        assert!(bad_sum.is_err());

        let base = TxType {
            probability: 1.0,
            duration: SimTime::from_secs(1),
            data_records: 1,
            record_size: 1,
        };
        assert!(TxMix::new(vec![TxType {
            duration: EPSILON,
            ..base
        }])
        .is_err());
        assert!(TxMix::new(vec![TxType {
            data_records: 0,
            ..base
        }])
        .is_err());
        assert!(TxMix::new(vec![TxType {
            record_size: 0,
            ..base
        }])
        .is_err());
        assert!(TxMix::new(vec![TxType {
            probability: f64::NAN,
            ..base
        }])
        .is_err());
        assert!(TxMix::new(vec![TxType {
            probability: 1.5,
            ..base
        }])
        .is_err());
    }

    #[test]
    fn phase_schedule_lookup() {
        let s = PhaseSchedule::paper(&[(0, 0.1), (100, 0.4), (200, 0.1)]);
        assert_eq!(s.phases().len(), 3);
        let frac_at = |secs| {
            let p = s.phase_at(SimTime::from_secs(secs));
            p.mix.types()[1].probability
        };
        assert!((frac_at(0) - 0.1).abs() < 1e-12);
        assert!((frac_at(99) - 0.1).abs() < 1e-12);
        assert!((frac_at(100) - 0.4).abs() < 1e-12, "boundary is inclusive");
        assert!((frac_at(199) - 0.4).abs() < 1e-12);
        assert!((frac_at(200) - 0.1).abs() < 1e-12);
        assert!((frac_at(10_000) - 0.1).abs() < 1e-12, "last phase is open");
        assert!(s.matches_types(&TxMix::paper_mix(0.25)));
    }

    #[test]
    fn phase_schedule_validation() {
        // Empty.
        assert!(PhaseSchedule::new(vec![]).is_err());
        // First phase must start at 0.
        assert!(PhaseSchedule::new(vec![Phase {
            start: SimTime::from_secs(5),
            mix: TxMix::paper_mix(0.1),
            rate_factor: 1.0,
        }])
        .is_err());
        // Strictly increasing starts.
        let p = |secs| Phase {
            start: SimTime::from_secs(secs),
            mix: TxMix::paper_mix(0.1),
            rate_factor: 1.0,
        };
        assert!(PhaseSchedule::new(vec![p(0), p(10), p(10)]).is_err());
        assert!(PhaseSchedule::new(vec![p(0), p(10), p(20)]).is_ok());
        // Rate factor must be positive and finite.
        assert!(PhaseSchedule::new(vec![Phase {
            rate_factor: 0.0,
            ..p(0)
        }])
        .is_err());
        assert!(PhaseSchedule::new(vec![Phase {
            rate_factor: f64::INFINITY,
            ..p(0)
        }])
        .is_err());
        // Phases must share one type table shape.
        let other_shape = TxMix::new(vec![TxType {
            probability: 1.0,
            duration: SimTime::from_secs(3),
            data_records: 1,
            record_size: 64,
        }])
        .unwrap();
        let err = PhaseSchedule::new(vec![
            p(0),
            Phase {
                start: SimTime::from_secs(10),
                mix: other_shape.clone(),
                rate_factor: 1.0,
            },
        ])
        .unwrap_err();
        assert!(err.to_string().contains("type table"), "{err}");
        let s = PhaseSchedule::paper(&[(0, 0.1)]);
        assert!(!s.matches_types(&other_shape));
    }

    #[test]
    fn phase_schedule_parse() {
        let s = PhaseSchedule::parse("0:0.1,160:0.4,330:0.1").unwrap();
        assert_eq!(s.phases().len(), 3);
        assert_eq!(s.phases()[1].start, SimTime::from_secs(160));
        assert!((s.phases()[1].mix.types()[1].probability - 0.4).abs() < 1e-12);
        assert_eq!(s.phases()[2].rate_factor, 1.0);

        let s = PhaseSchedule::parse("0:0.05@1, 20.5:0.05@2.5").unwrap();
        assert_eq!(s.phases()[1].start, SimTime::from_secs_f64(20.5));
        assert_eq!(s.phases()[1].rate_factor, 2.5);

        assert!(PhaseSchedule::parse("").is_err());
        assert!(PhaseSchedule::parse("0:1.5").is_err());
        assert!(PhaseSchedule::parse("0:0.1,abc:0.4").is_err());
        assert!(PhaseSchedule::parse("0:0.1@zzz").is_err());
        assert!(PhaseSchedule::parse("5:0.1").is_err(), "must start at 0");
        assert!(PhaseSchedule::parse("0:0.1@-1").is_err());
    }

    #[test]
    fn error_message_names_field() {
        let e = TxMix::new(vec![TxType {
            probability: 1.0,
            duration: SimTime::from_secs(1),
            data_records: 0,
            record_size: 1,
        }])
        .unwrap_err();
        assert!(e.to_string().contains("data record"));
    }
}
