//! Workload trace capture and replay.
//!
//! The minimum-space searches (§4) probe dozens of log geometries against
//! the *same* workload: probes vary only `generation_blocks`, never the
//! seed. The workload-visible interface of a run — arrival times, type
//! draws, oid picks, record sizes — is independent of the log geometry as
//! long as no transaction is killed: the log device has a fixed per-write
//! latency with no cross-generation queueing, and generation 0 (the only
//! generation the workload writes into) never receives forwarded or
//! recirculated traffic, so commit-ack times and hence the oid picker's
//! held set evolve identically under every kill-free geometry. A killed
//! probe stops at its first kill, and its pre-kill history equals the
//! kill-free history, so replaying a kill-free capture is exact there too.
//!
//! [`WorkloadTrace`] is that captured interface in two flat vectors: one
//! [`TraceTxn`] per transaction (arrival time, type, oid-slot offset) and
//! one shared oid array. No per-event heap objects, no RNG state — a
//! replaying driver walks the vectors instead of sampling.

use elog_model::Oid;
use elog_sim::SimTime;

/// Oid slot reserved at arrival but never filled because the capture run's
/// horizon cut the write off. Replay never delivers those writes either,
/// so the hole is only ever read by the `debug_assert` guarding it.
pub(crate) const UNWRITTEN: Oid = Oid(u64::MAX);

/// One captured transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TraceTxn {
    /// Arrival time (absolute).
    pub at: SimTime,
    /// Index into the mix's type list.
    pub type_idx: u32,
    /// First oid slot in [`WorkloadTrace::oids`]; the transaction's
    /// `seq`-th data record (1-based) reads slot `oid_start + seq - 1`.
    pub oid_start: u32,
}

/// A captured workload: everything the driver's RNG and oid picker would
/// produce, flattened for replay (see module docs for why this is exact).
///
/// Obtained from [`crate::WorkloadDriver::take_trace`] after a kill-free
/// capture run; valid for any run sharing the capture's seed, mix,
/// arrivals, horizon and oid-space size — the log geometry is free to vary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadTrace {
    pub(crate) txns: Vec<TraceTxn>,
    pub(crate) oids: Vec<Oid>,
    pub(crate) horizon: SimTime,
}

impl WorkloadTrace {
    /// Transactions captured.
    pub fn transactions(&self) -> usize {
        self.txns.len()
    }

    /// Data-record (oid) slots captured.
    pub fn data_records(&self) -> usize {
        self.oids.len()
    }

    /// The arrival horizon the trace was captured under. Replay requires
    /// the same horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Iterates the captured transactions as `(arrival time, mix type
    /// index)` pairs, in arrival order — the exact inputs the analytic
    /// feasibility model reconstructs per-record write times from (oid
    /// choices are irrelevant to byte arithmetic and stay private).
    pub fn arrivals(&self) -> impl Iterator<Item = (SimTime, usize)> + '_ {
        self.txns.iter().map(|t| (t.at, t.type_idx as usize))
    }

    /// Approximate heap footprint in bytes (compactness check).
    pub fn heap_bytes(&self) -> usize {
        self.txns.capacity() * std::mem::size_of::<TraceTxn>()
            + self.oids.capacity() * std::mem::size_of::<Oid>()
    }

    /// Content fingerprint of the capture: a 64-bit FNV-1a hash over every
    /// transaction (arrival micros, type index, oid-slot offset), every oid
    /// slot, and the horizon. Two traces fingerprint equal iff replay would
    /// deliver the same workload, so the persistent probe-verdict cache uses
    /// this as a staleness check: a cache file recorded under a different
    /// capture must be discarded, whatever its key said.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.txns.len() as u64);
        for t in &self.txns {
            mix(t.at.as_micros());
            mix(u64::from(t.type_idx));
            mix(u64::from(t.oid_start));
        }
        mix(self.oids.len() as u64);
        for oid in &self.oids {
            mix(oid.0);
        }
        mix(self.horizon.as_micros());
        h
    }

    /// Checks that a replay under `horizon` would be exact: the trace must
    /// have been captured under the *same* arrival horizon (a longer one
    /// would be missing arrivals, a shorter one would replay arrivals the
    /// capture never admitted). Search loops that reuse one capture across
    /// many probes call this once per probe configuration instead of
    /// asserting deep inside the driver.
    pub fn check_replayable(&self, horizon: SimTime) -> Result<(), String> {
        if self.horizon == horizon {
            Ok(())
        } else {
            Err(format!(
                "trace captured under horizon {:?} cannot replay a {:?} run",
                self.horizon, horizon
            ))
        }
    }
}

/// Accumulates a trace during a live (capturing) run.
#[derive(Clone, Debug, Default)]
pub(crate) struct TraceBuilder {
    pub txns: Vec<TraceTxn>,
    pub oids: Vec<Oid>,
}

impl TraceBuilder {
    /// Registers transaction `tid` (dense, arrival order) and reserves its
    /// oid slots.
    pub fn on_arrival(&mut self, at: SimTime, type_idx: usize, data_records: u32) {
        self.txns.push(TraceTxn {
            at,
            type_idx: type_idx as u32,
            oid_start: self.oids.len() as u32,
        });
        self.oids
            .resize(self.oids.len() + data_records as usize, UNWRITTEN);
    }

    /// Records the oid picked for transaction `tid`'s `seq`-th data record.
    pub fn on_write_data(&mut self, tid_index: usize, seq: u32, oid: Oid) {
        let slot = self.txns[tid_index].oid_start as usize + seq as usize - 1;
        debug_assert_eq!(self.oids[slot], UNWRITTEN, "oid slot written twice");
        self.oids[slot] = oid;
    }

    /// Finalises the capture.
    pub fn finish(self, horizon: SimTime) -> WorkloadTrace {
        WorkloadTrace {
            txns: self.txns,
            oids: self.oids,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reserves_and_fills_slots() {
        let mut b = TraceBuilder::default();
        b.on_arrival(SimTime::ZERO, 0, 2);
        b.on_arrival(SimTime::from_millis(10), 1, 4);
        assert_eq!(b.oids.len(), 6);
        b.on_write_data(0, 1, Oid(7));
        b.on_write_data(1, 2, Oid(9));
        let t = b.finish(SimTime::from_secs(1));
        assert_eq!(t.transactions(), 2);
        assert_eq!(t.data_records(), 6);
        assert_eq!(t.oids[0], Oid(7));
        assert_eq!(t.oids[3], Oid(9));
        assert_eq!(t.oids[1], UNWRITTEN, "horizon hole survives as sentinel");
        assert_eq!(t.horizon(), SimTime::from_secs(1));
        assert!(t.heap_bytes() > 0);
    }
}
