//! Property tests for the workload generator.

use elog_sim::{SimRng, SimTime};
use elog_workload::spec::EPSILON;
use elog_workload::{ArrivalProcess, OidPicker, TxMix, TxType, WorkloadDriver, WorkloadEvent};
use proptest::prelude::*;

fn arb_type(prob: f64) -> impl Strategy<Value = TxType> {
    (10u64..20_000, 1u32..10, 1u32..500).prop_map(move |(dur_ms, records, size)| TxType {
        probability: prob,
        duration: SimTime::from_millis(dur_ms.max(2)),
        data_records: records,
        record_size: size,
    })
}

proptest! {
    /// Data-record write offsets are strictly increasing and the last one
    /// lands exactly ε before the transaction's duration (Figure 3).
    #[test]
    fn write_offsets_follow_figure3(ty in arb_type(1.0)) {
        let mut prev = SimTime::ZERO;
        for seq in 1..=ty.data_records {
            let off = ty.data_write_offset(seq);
            prop_assert!(off >= prev, "offsets must be non-decreasing");
            prop_assert!(off <= ty.duration.saturating_sub(EPSILON));
            prev = off;
        }
        prop_assert_eq!(
            ty.data_write_offset(ty.data_records),
            ty.duration.saturating_sub(EPSILON)
        );
    }

    /// Sampling frequencies converge to the configured pdf for arbitrary
    /// two-way splits.
    #[test]
    fn sampling_matches_pdf(p in 0.05f64..0.95, seed in 1u64..) {
        let mix = TxMix::new(vec![
            TxType { probability: 1.0 - p, duration: SimTime::from_secs(1), data_records: 1, record_size: 10 },
            TxType { probability: p, duration: SimTime::from_secs(2), data_records: 1, record_size: 10 },
        ]).unwrap();
        let mut rng = SimRng::new(seed);
        let n = 20_000;
        let hits = (0..n).filter(|_| mix.sample(&mut rng) == 1).count();
        let observed = hits as f64 / n as f64;
        prop_assert!((observed - p).abs() < 0.03, "p {p} observed {observed}");
    }

    /// The picker never hands out a held oid, and held-count bookkeeping
    /// matches a reference set under arbitrary pick/release interleavings.
    #[test]
    fn picker_matches_reference_model(ops in proptest::collection::vec(any::<bool>(), 1..300), seed in 1u64..) {
        let mut p = OidPicker::new(5_000);
        let mut rng = SimRng::new(seed);
        let mut held: Vec<elog_model::Oid> = Vec::new();
        for pick in ops {
            if pick || held.is_empty() {
                let oid = p.pick(&mut rng);
                prop_assert!(!held.contains(&oid), "duplicate pick {oid}");
                held.push(oid);
            } else {
                let oid = held.remove(held.len() / 2);
                prop_assert!(p.release(oid));
            }
            prop_assert_eq!(p.held(), held.len());
        }
    }

    /// Driver conservation: after any run, started = active + committed +
    /// killed, and every commit releases exactly its own oids.
    #[test]
    fn driver_conserves_transactions(bursts in 1u64..60, seed in 1u64.., frac in 0.0f64..1.0) {
        let mut d = WorkloadDriver::new(
            TxMix::paper_mix(frac),
            ArrivalProcess::Deterministic { rate_tps: 100.0 },
            10_000_000,
            SimTime::from_secs(3_600),
            &SimRng::new(seed),
        );
        let mut t = SimTime::ZERO;
        let mut live: Vec<elog_model::Tid> = Vec::new();
        let mut events = Vec::new();
        for i in 0..bursts {
            let new = d.on_arrival(t, &mut events).expect("before horizon");
            // Write the data records the plan scheduled.
            let writes = events
                .iter()
                .filter(|(_, e)| matches!(e, WorkloadEvent::WriteData { .. }))
                .count();
            for s in 0..writes {
                d.on_write_data(t + SimTime::from_millis(s as u64 + 1), new.tid, s as u32 + 1);
            }
            live.push(new.tid);
            // Finish every third transaction immediately, kill every
            // seventh.
            if i % 3 == 0 {
                d.on_write_commit(t + SimTime::from_millis(50), new.tid);
                let ups = d.on_commit_ack(t + SimTime::from_millis(60), new.tid);
                prop_assert_eq!(ups.len(), writes);
                live.pop();
            } else if i % 7 == 0 {
                d.on_kill(t + SimTime::from_millis(55), new.tid);
                live.pop();
            }
            t += SimTime::from_millis(100);
        }
        let s = d.stats();
        prop_assert_eq!(s.started, bursts);
        prop_assert_eq!(
            s.started,
            s.committed + s.killed + d.active_txns() as u64
        );
        // Held oids are exactly the live transactions' updates.
        let expected_held: usize = live
            .iter()
            .map(|tid| d.updates_of(*tid).map_or(0, <[_]>::len))
            .sum();
        prop_assert_eq!(d.picker().unwrap().held(), expected_held);
    }
}
