//! The §6 "adaptable EL" tuner in action.
//!
//! The paper closes wishing for "an adaptable version of EL that
//! dynamically chooses the number and sizes of generations itself". This
//! example runs our advisory tuner: one exploration pass observes the
//! generation-0 fill rate and the garbage-age distribution, an analytic
//! estimate sizes both generations, and a few validation probes walk the
//! estimate to the kill boundary — then the result is compared with the
//! brute-force grid search.
//!
//! ```text
//! cargo run --release --example autotune [frac_long] [runtime_secs]
//! ```

use elog_harness::autotune::{autotune, observe};
use elog_harness::minspace::paper_base;
use elog_harness::{LatticeLimits, SearchRequest};

fn main() {
    let mut args = std::env::args().skip(1);
    let frac_long: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let runtime: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);

    let base = paper_base(frac_long, false, runtime);
    println!(
        "tuning EL for {:.0}% long transactions over {runtime} s runs...\n",
        frac_long * 100.0
    );

    let obs = observe(&base, runtime);
    println!("observation (roomy 96+96 exploration run):");
    println!(
        "  gen0 fill rate      : {:.2} blocks/s",
        obs.gen0_blocks_per_sec
    );
    println!(
        "  bulk garbage age    : {:.0} ms (90th percentile)",
        obs.bulk_age_ms
    );
    println!(
        "  straggler horizon   : {:.0} ms (max observed)",
        obs.max_age_ms
    );
    println!(
        "  forwarded bytes     : {:.0} B/s\n",
        obs.forwarded_bytes_per_sec
    );

    let t0 = std::time::Instant::now();
    let tuned = autotune(&base, runtime);
    let tune_time = t0.elapsed();
    println!(
        "tuner estimate {:?} -> validated {:?} = {} blocks in {} probes ({tune_time:?})\n",
        tuned.estimate, tuned.tuned.generation_blocks, tuned.tuned.total_blocks, tuned.probes
    );

    let t0 = std::time::Instant::now();
    let grid = SearchRequest::lattice(
        &base,
        LatticeLimits {
            prefix_max: vec![28],
            last_limit: 256,
        },
    )
    .jobs(elog_harness::sweep::default_jobs())
    .run()
    .min;
    let grid_time = t0.elapsed();
    println!(
        "grid search        -> {:?} = {} blocks in {} probes ({grid_time:?})",
        grid.generation_blocks, grid.total_blocks, grid.probes
    );
    println!(
        "\ntuner used {:.1}x fewer probes and landed within {} blocks of the grid minimum",
        grid.probes as f64 / tuned.probes as f64,
        tuned.tuned.total_blocks.abs_diff(grid.total_blocks)
    );
}
