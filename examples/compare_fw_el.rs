//! Head-to-head: firewall logging vs ephemeral logging on one workload.
//!
//! Reproduces a single point of Figures 4–6: at the 5 % long-transaction
//! mix, find each technique's minimum disk space, then measure bandwidth
//! and memory at that minimum.
//!
//! ```text
//! cargo run --release --example compare_fw_el [frac_long] [runtime_secs]
//! ```

use elog_core::MemoryModel;
use elog_harness::minspace::{fw_min_space, paper_base};
use elog_harness::runner::run;
use elog_harness::{LatticeLimits, SearchRequest};

fn main() {
    let mut args = std::env::args().skip(1);
    let frac_long: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let runtime: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);
    println!(
        "mix: {:.0}% ten-second transactions, {runtime} s simulated\n",
        frac_long * 100.0
    );

    // Firewall: single log, kill the oldest transaction when space runs out.
    let mut fw_base = paper_base(frac_long, false, runtime);
    fw_base.el.memory_model = MemoryModel::Firewall;
    let fw_min = fw_min_space(&fw_base, 2048);
    let mut cfg = fw_base.clone();
    cfg.el.log.generation_blocks = fw_min.generation_blocks.clone();
    let fw = run(&cfg);

    // Ephemeral logging: two generations, no recirculation (Figure 4 setup).
    let el_base = paper_base(frac_long, false, runtime);
    let el_min = SearchRequest::lattice(
        &el_base,
        LatticeLimits {
            prefix_max: vec![32],
            last_limit: 512,
        },
    )
    .jobs(elog_harness::sweep::default_jobs())
    .run()
    .min;
    let mut cfg = el_base.clone();
    cfg.el.log.generation_blocks = el_min.generation_blocks.clone();
    let el = run(&cfg);

    println!("                    {:>12} {:>16}", "firewall", "ephemeral");
    println!(
        "min disk space      {:>12} {:>16}",
        format!("{} blk", fw_min.total_blocks),
        format!(
            "{:?} = {} blk",
            el_min.generation_blocks, el_min.total_blocks
        )
    );
    println!(
        "log bandwidth       {:>12} {:>16}",
        format!("{:.2} w/s", fw.metrics.log_write_rate),
        format!("{:.2} w/s", el.metrics.log_write_rate)
    );
    println!(
        "peak memory         {:>12} {:>16}",
        format!("{} B", fw.metrics.peak_memory_bytes),
        format!("{} B", el.metrics.peak_memory_bytes)
    );
    println!(
        "kills at minimum    {:>12} {:>16}",
        fw.killed.to_string(),
        el.killed.to_string()
    );
    println!();
    println!(
        "space reduction     : {:.2}x",
        f64::from(fw_min.total_blocks) / f64::from(el_min.total_blocks)
    );
    println!(
        "bandwidth premium   : {:+.1}%",
        (el.metrics.log_write_rate / fw.metrics.log_write_rate - 1.0) * 100.0
    );
    println!(
        "memory premium      : {:.2}x",
        el.metrics.peak_memory_bytes as f64 / fw.metrics.peak_memory_bytes as f64
    );
    println!("\n(paper, 5% mix over 500 s: 123 vs 34 blocks = 3.6x, +11% bandwidth)");
}
