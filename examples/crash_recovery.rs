//! Crash a running system at an arbitrary instant and recover it.
//!
//! Runs the paper's 5 % workload against an EL manager, "pulls the plug"
//! mid-run (open and in-flight buffers are lost; only the durable surface
//! and the stable database survive), executes the single-pass recovery,
//! and verifies the reconstruction against the oracle of acknowledged
//! commits.
//!
//! ```text
//! cargo run --release --example crash_recovery [crash_at_secs]
//! ```

use elog_core::ElConfig;
use elog_harness::runner::{build_model, RunConfig};
use elog_model::{FlushConfig, LogConfig};
use elog_recovery::{
    check_against_oracle, estimate_recovery_time, recover, scan_blocks, RecoveryTimeModel,
};
use elog_sim::SimTime;

fn main() {
    let crash_at: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42.5);

    let log = LogConfig {
        generation_blocks: vec![18, 16],
        recirculation: true,
        ..LogConfig::default()
    };
    let mut cfg = RunConfig::paper(0.05, ElConfig::ephemeral(log, FlushConfig::default()));
    cfg.runtime = SimTime::from_secs_f64(crash_at + 10.0);
    cfg.track_oracle = true;

    println!("running 5% mix at 100 TPS; crashing at t = {crash_at} s ...");
    let mut engine = build_model(&cfg);
    engine.run_until(SimTime::from_secs_f64(crash_at)); // CRASH.
    let model = engine.model();

    let stats = model.driver.stats();
    println!(
        "at crash: {} txns started, {} acknowledged, {} in flight",
        stats.started,
        stats.committed,
        model.driver.active_txns()
    );

    // Everything in RAM is gone. What survives:
    let surface = model.lm.log_surface();
    let stable = model.lm.stable_db();
    let blocks: usize = surface.iter().map(Vec::len).sum();
    println!(
        "durable surface: {blocks} log blocks across {} generations; stable DB {} objects",
        surface.len(),
        stable.len()
    );

    // Single-pass recovery.
    let wall = std::time::Instant::now();
    let image = scan_blocks(surface.iter());
    let state = recover(&image, stable);
    let wall = wall.elapsed();

    println!(
        "scan: {} records ({} duplicates from forwarding/recirculation), {} committed txns",
        image.stats.records, image.stats.duplicates, state.committed_txns
    );
    println!(
        "redo: {} redone, {} stale skipped, {} uncommitted skipped -> {} objects total",
        state.redone,
        state.skipped_stale,
        state.skipped_uncommitted,
        state.versions.len()
    );

    let modelled = estimate_recovery_time(
        &RecoveryTimeModel::default(),
        &model
            .lm
            .metrics(SimTime::from_secs_f64(crash_at))
            .per_gen_blocks,
        image.stats.records,
    );
    println!("recovery time: {modelled} modelled on 1993 hardware, {wall:?} measured in memory");

    // Verification.
    let report = check_against_oracle(&model.oracle, &state);
    println!(
        "verification: {} exact, {} newer (commits durable but unacknowledged at crash), {} missing, {} stale",
        report.exact,
        report.acceptable_newer,
        report.missing.len(),
        report.stale.len()
    );
    assert!(report.is_ok(), "recovery lost acknowledged data!");
    println!("\nok: no acknowledged transaction was lost.");
}
