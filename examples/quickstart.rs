//! Quickstart: drive an ephemeral log manager by hand.
//!
//! Creates an EL manager with the paper's two-generation geometry, runs a
//! couple of transactions through BEGIN → data records → COMMIT → group
//! commit acknowledgement, and prints what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use elog_core::{ElManager, SimpleHost};
use elog_model::{FlushConfig, LogConfig, Oid, Tid};
use elog_sim::SimTime;

fn main() {
    // The paper's minimum 5%-mix geometry: 18 + 16 blocks, 2 KB each.
    let log = LogConfig {
        generation_blocks: vec![18, 16],
        ..LogConfig::default()
    };
    let lm = ElManager::ephemeral(log, FlushConfig::default());
    let mut host = SimpleHost::new(lm);

    let ms = SimTime::from_millis;

    // Transaction 1: a short OLTP-style update of two objects.
    host.begin(ms(0), Tid(1));
    host.write(ms(500), Tid(1), Oid(1_234_567), 1, 100);
    host.write(ms(999), Tid(1), Oid(7_654_321), 2, 100);
    host.commit(ms(1_000), Tid(1));

    // Transaction 2 overlaps and aborts: all its records become garbage at
    // once, nothing ever reaches the stable database.
    host.begin(ms(200), Tid(2));
    host.write(ms(300), Tid(2), Oid(42), 1, 100);
    host.abort(ms(400), Tid(2));

    // Group commit: the COMMIT record sits in a buffer until the buffer
    // fills — or until we quiesce, as at a clean shutdown.
    host.quiesce(ms(1_001));
    let end = host.run_to_completion();

    println!("virtual time elapsed : {end}");
    println!("acknowledged commits : {:?}", host.acks);
    println!("kills                : {:?}", host.kills);
    println!(
        "stable database      : {} objects ({} installs)",
        host.lm.stable_db().len(),
        host.lm.stable_db().installs()
    );
    let m = host.lm.metrics(end);
    println!(
        "log block writes     : {} ({} generations)",
        m.log_writes,
        m.per_gen_blocks.len()
    );
    println!(
        "peak memory          : {} bytes (paper model: 40 B/txn + 40 B/object)",
        m.peak_memory_bytes
    );

    assert_eq!(host.acks, vec![Tid(1)]);
    assert_eq!(host.lm.stable_db().len(), 2);
    println!("\nok: transaction 1 committed, transaction 2 left no trace.");
}
