//! Ephemeral logging under scarce flush bandwidth (§4's closing study).
//!
//! When the stable-database drives can barely keep up with the update rate
//! (222 flushes/s against 210 updates/s), committed-but-unflushed records
//! recirculate in the last generation until their flush completes — and
//! the growing backlog *increases* flush locality, a stabilising negative
//! feedback. This example measures both effects.
//!
//! ```text
//! cargo run --release --example scarce_flush [runtime_secs]
//! ```

use elog_harness::experiments::scarce;
use elog_harness::sweep::{run_scenarios, ExecOptions};

fn main() {
    let runtime: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);

    let cfg = scarce::Config {
        frac_long: 0.05,
        runtime_secs: runtime,
        g0_max: 28,
        g1_limit: 128,
    };
    println!("comparing 25 ms (ample) vs 45 ms (scarce) flush transfers, {runtime} s runs...\n");
    let outcomes = run_scenarios(&scarce::scenarios_for(&cfg), &ExecOptions::default());
    let cases = scarce::cases(&outcomes);
    println!("{}", scarce::table(&cases).render());

    if let Some(gain) = scarce::locality_gain(&cases) {
        println!("locality gain under scarcity: {gain:.2}x shorter seeks");
    }
    let scarce_case = cases.last().expect("scarce case ran");
    println!(
        "scarce case: {} recirculated records, flush utilisation {:.0}%",
        scarce_case.measured.metrics.stats.recirculated_records,
        scarce_case.measured.metrics.flush_utilisation * 100.0
    );
    println!(
        "\n(paper: 31 blocks and 13.96 w/s at 45 ms; mean oid distance 109,000 vs 235,000 at 25 ms)"
    );
}
