//! Tune the last generation's size — the Figure 7 trade-off.
//!
//! With recirculation on and gen0 pinned, sweep the last generation from
//! its kill-free minimum upward and watch bandwidth fall as space grows.
//! This is the knob the paper's §6 wishes a DBA did not have to set by
//! hand ("Ideally, we would like an adaptable version of EL that
//! dynamically chooses the number and sizes of generations itself").
//!
//! ```text
//! cargo run --release --example tune_generations [g0] [runtime_secs]
//! ```

use elog_harness::experiments::fig7;

fn main() {
    let mut args = std::env::args().skip(1);
    let g0: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(18);
    let runtime: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);

    let cfg = fig7::Config { frac_long: 0.05, g0, g1_max: 16, runtime_secs: runtime };
    println!(
        "sweeping last-generation size with gen0 = {g0}, recirculation on, {runtime} s runs...\n"
    );
    let out = fig7::run_experiment(&cfg);
    println!("{}", out.table().render());
    println!(
        "smallest kill-free geometry: {} + {} = {} blocks",
        out.g0,
        out.min_g1,
        out.g0 + out.min_g1
    );
    let first = out.points.first().expect("at least the minimum point");
    let last = out.points.last().expect("at least the minimum point");
    println!(
        "bandwidth at minimum vs roomiest: {:.2} vs {:.2} block writes/s",
        first.measured.metrics.log_write_rate, last.measured.metrics.log_write_rate
    );
    println!("(paper: space 34 -> 28 blocks cost only 12.87 -> 12.99 writes/s)");
}
