//! Tune the last generation's size — the Figure 7 trade-off.
//!
//! With recirculation on and gen0 pinned, sweep the last generation from
//! its kill-free minimum upward and watch bandwidth fall as space grows.
//! This is the knob the paper's §6 wishes a DBA did not have to set by
//! hand ("Ideally, we would like an adaptable version of EL that
//! dynamically chooses the number and sizes of generations itself").
//!
//! ```text
//! cargo run --release --example tune_generations [g0] [runtime_secs]
//! ```

use elog_harness::experiments::fig7;
use elog_harness::sweep::{run_scenarios, ExecOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let g0: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(18);
    let runtime: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);

    let cfg = fig7::Config {
        frac_long: 0.05,
        g0,
        g1_max: 16,
        runtime_secs: runtime,
    };
    println!(
        "sweeping last-generation size with gen0 = {g0}, recirculation on, {runtime} s runs...\n"
    );
    let outcomes = run_scenarios(&fig7::scenarios_for(&cfg), &ExecOptions::default());
    let points = fig7::surviving_points(&outcomes);
    println!("{}", fig7::table(&points).render());
    let first = points.first().expect("at least one kill-free geometry");
    let last = points.last().expect("at least one kill-free geometry");
    println!(
        "smallest kill-free geometry: {} + {} = {} blocks",
        g0,
        first.g1,
        g0 + first.g1
    );
    println!(
        "bandwidth at minimum vs roomiest: {:.2} vs {:.2} block writes/s",
        first.measured.metrics.log_write_rate, last.measured.metrics.log_write_rate
    );
    println!("(paper: space 34 -> 28 blocks cost only 12.87 -> 12.99 writes/s)");
}
