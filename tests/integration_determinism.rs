//! Reproducibility: a seed fully determines a run, across techniques,
//! arrival processes and crash instants — and the rendered reports are
//! byte-identical across repeats and across process boundaries.

use elog_core::ElConfig;
use elog_harness::experiments::registry;
use elog_harness::runner::{build_model, run, RunConfig};
use elog_harness::sweep::{run_experiments, ExecOptions, ExperimentReport};
use elog_model::{FlushConfig, LogConfig};
use elog_recovery::{recover, scan_blocks};
use elog_sim::SimTime;
use elog_workload::ArrivalProcess;

fn cfg(seed: u64, poisson: bool) -> RunConfig {
    let log = LogConfig {
        generation_blocks: vec![18, 16],
        recirculation: true,
        ..LogConfig::default()
    };
    let mut c = RunConfig::paper(0.2, ElConfig::ephemeral(log, FlushConfig::default()));
    c.runtime = SimTime::from_secs(20);
    c.seed = seed;
    if poisson {
        c.arrivals = ArrivalProcess::Poisson { rate_tps: 100.0 };
    }
    c
}

#[test]
fn identical_seeds_identical_runs() {
    for poisson in [false, true] {
        let a = run(&cfg(77, poisson));
        let b = run(&cfg(77, poisson));
        assert_eq!(a.started, b.started);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.killed, b.killed);
        assert_eq!(a.metrics.log_writes, b.metrics.log_writes);
        assert_eq!(a.metrics.flushes, b.metrics.flushes);
        assert_eq!(a.metrics.peak_memory_bytes, b.metrics.peak_memory_bytes);
        assert_eq!(
            a.metrics.stats.forwarded_records,
            b.metrics.stats.forwarded_records
        );
        assert_eq!(
            a.metrics.stats.recirculated_records,
            b.metrics.stats.recirculated_records
        );
    }
}

#[test]
fn identical_seeds_identical_crash_surfaces() {
    let snapshot = |seed: u64| {
        let mut c = cfg(seed, false);
        c.track_oracle = true;
        let mut engine = build_model(&c);
        engine.run_until(SimTime::from_secs(9));
        let model = engine.model();
        let surface = model.lm.log_surface();
        let image = scan_blocks(surface.iter());
        let state = recover(&image, model.lm.stable_db());
        (
            image.stats.records,
            image.stats.blocks,
            state.versions.len(),
            state.committed_txns,
        )
    };
    assert_eq!(snapshot(123), snapshot(123));
    assert_ne!(snapshot(123), snapshot(321), "different seeds must diverge");
}

/// What `repro --quick --only fig4` prints to stdout, reproduced
/// in-process (header, rendered tables, notes).
fn render_like_repro(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    out.push_str("# Ephemeral Logging (SIGMOD '93) — full reproduction [quick mode]\n\n");
    for report in reports {
        for (_slug, table) in &report.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &report.notes {
            out.push_str(note);
            out.push('\n');
        }
        if !report.notes.is_empty() {
            out.push('\n');
        }
    }
    out
}

#[test]
fn quick_fig4_report_is_byte_stable_across_processes() {
    // The report is a pure function of the experiment configuration: two
    // in-process runs and a fresh-process run must agree byte for byte.
    // This pins down everything the hot path leans on — hasher seeding,
    // map iteration discipline, the pruned min-space search — since any
    // process-dependent state (e.g. RandomState-style per-process hash
    // seeds) would show up here first.
    let experiments: Vec<_> = registry()
        .into_iter()
        .filter(|e| e.name().to_lowercase().contains("fig4"))
        .collect();
    assert!(!experiments.is_empty());
    let exec = ExecOptions {
        jobs: 2,
        progress: false,
    };
    let first = render_like_repro(&run_experiments(&experiments, true, &exec));
    let second = render_like_repro(&run_experiments(&experiments, true, &exec));
    assert_eq!(first, second, "same process, same bytes");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--only", "fig4", "--jobs", "2"])
        .output()
        .expect("spawn repro");
    assert!(out.status.success(), "repro failed: {out:?}");
    let fresh = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert_eq!(fresh, first, "fresh process, same bytes");
}

#[test]
fn seed_changes_only_stochastic_choices() {
    // Deterministic arrivals: the *count* of started transactions is fixed
    // by the clock regardless of seed; only type draws and oids move.
    let a = run(&cfg(1, false));
    let b = run(&cfg(2, false));
    assert_eq!(a.started, b.started);
}
