//! Reproducibility: a seed fully determines a run, across techniques,
//! arrival processes and crash instants.

use elog_core::ElConfig;
use elog_harness::runner::{build_model, run, RunConfig};
use elog_model::{FlushConfig, LogConfig};
use elog_recovery::{recover, scan_blocks};
use elog_sim::SimTime;
use elog_workload::ArrivalProcess;

fn cfg(seed: u64, poisson: bool) -> RunConfig {
    let log = LogConfig {
        generation_blocks: vec![18, 16],
        recirculation: true,
        ..LogConfig::default()
    };
    let mut c = RunConfig::paper(0.2, ElConfig::ephemeral(log, FlushConfig::default()));
    c.runtime = SimTime::from_secs(20);
    c.seed = seed;
    if poisson {
        c.arrivals = ArrivalProcess::Poisson { rate_tps: 100.0 };
    }
    c
}

#[test]
fn identical_seeds_identical_runs() {
    for poisson in [false, true] {
        let a = run(&cfg(77, poisson));
        let b = run(&cfg(77, poisson));
        assert_eq!(a.started, b.started);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.killed, b.killed);
        assert_eq!(a.metrics.log_writes, b.metrics.log_writes);
        assert_eq!(a.metrics.flushes, b.metrics.flushes);
        assert_eq!(a.metrics.peak_memory_bytes, b.metrics.peak_memory_bytes);
        assert_eq!(
            a.metrics.stats.forwarded_records,
            b.metrics.stats.forwarded_records
        );
        assert_eq!(
            a.metrics.stats.recirculated_records,
            b.metrics.stats.recirculated_records
        );
    }
}

#[test]
fn identical_seeds_identical_crash_surfaces() {
    let snapshot = |seed: u64| {
        let mut c = cfg(seed, false);
        c.track_oracle = true;
        let mut engine = build_model(&c);
        engine.run_until(SimTime::from_secs(9));
        let model = engine.model();
        let surface = model.lm.log_surface();
        let image = scan_blocks(surface.iter());
        let state = recover(&image, model.lm.stable_db());
        (
            image.stats.records,
            image.stats.blocks,
            state.versions.len(),
            state.committed_txns,
        )
    };
    assert_eq!(snapshot(123), snapshot(123));
    assert_ne!(snapshot(123), snapshot(321), "different seeds must diverge");
}

#[test]
fn seed_changes_only_stochastic_choices() {
    // Deterministic arrivals: the *count* of started transactions is fixed
    // by the clock regardless of seed; only type draws and oids move.
    let a = run(&cfg(1, false));
    let b = run(&cfg(2, false));
    assert_eq!(a.started, b.started);
}
