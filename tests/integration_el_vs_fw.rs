//! Cross-crate integration: the paper's central comparison holds end to
//! end — EL needs far less disk than FW for mixed-lifetime workloads, at a
//! modest bandwidth and memory premium.

use elog_core::MemoryModel;
use elog_harness::minspace::{fw_min_space, paper_base};
use elog_harness::runner::run;
use elog_harness::{LatticeLimits, MinSpaceResult, SearchRequest};

/// Two-generation minimum through the unified search API, on the default
/// thread count (what the deprecated `el_min_space` shim used to do).
fn el_min_space(base: &elog_harness::RunConfig, g0_max: u32, g1_limit: u32) -> MinSpaceResult {
    SearchRequest::lattice(
        base,
        LatticeLimits {
            prefix_max: vec![g0_max],
            last_limit: g1_limit,
        },
    )
    .jobs(elog_harness::sweep::default_jobs())
    .run()
    .min
}

#[test]
fn el_beats_fw_on_space_at_5_percent() {
    let runtime = 60;

    let mut fw_base = paper_base(0.05, false, runtime);
    fw_base.el.memory_model = MemoryModel::Firewall;
    let fw_min = fw_min_space(&fw_base, 1024);

    let el_base = paper_base(0.05, false, runtime);
    let el_min = el_min_space(&el_base, 28, 256);

    let ratio = f64::from(fw_min.total_blocks) / f64::from(el_min.total_blocks);
    assert!(
        ratio > 2.5,
        "expected a large space reduction at 5% (paper: 3.6x over 500 s), got {ratio:.2} \
         ({} vs {:?})",
        fw_min.total_blocks,
        el_min.generation_blocks
    );

    // Measure both at their minima.
    let mut cfg = fw_base.clone();
    cfg.el.log.generation_blocks = fw_min.generation_blocks.clone();
    let fw = run(&cfg);
    let mut cfg = el_base.clone();
    cfg.el.log.generation_blocks = el_min.generation_blocks.clone();
    let el = run(&cfg);

    assert_eq!(fw.killed, 0);
    assert_eq!(el.killed, 0);

    // Bandwidth premium is positive but bounded (paper: +11%).
    let premium = el.metrics.log_write_rate / fw.metrics.log_write_rate - 1.0;
    assert!(
        premium > 0.0 && premium < 0.4,
        "EL bandwidth premium out of range: {premium:.3}"
    );

    // Memory: EL pays more (40+40 vs 22 bytes), but modestly.
    assert!(el.metrics.peak_memory_bytes > fw.metrics.peak_memory_bytes);
    assert!(
        el.metrics.peak_memory_bytes < 64 * 1024,
        "paper: modest memory"
    );

    // Nothing unsafe happened in either run.
    for r in [&fw, &el] {
        assert_eq!(r.metrics.stats.unsafe_drops, 0);
        assert_eq!(r.metrics.stats.durability_violations, 0);
    }
}

#[test]
fn equal_lifetimes_erase_els_advantage() {
    // §6: "When all transactions are approximately the same duration …
    // the FW technique requires no more disk space than EL." With 100% of
    // transactions identical and short, both techniques need roughly the
    // traffic of one transaction lifetime.
    let runtime = 40;
    let mut fw_base = paper_base(0.0, false, runtime);
    fw_base.el.memory_model = MemoryModel::Firewall;
    let fw_min = fw_min_space(&fw_base, 512);

    let el_base = paper_base(0.0, false, runtime);
    let el_min = el_min_space(&el_base, 28, 256);

    let ratio = f64::from(fw_min.total_blocks) / f64::from(el_min.total_blocks);
    assert!(
        ratio < 1.8,
        "uniform lifetimes should leave little EL advantage, got {ratio:.2} ({} vs {:?})",
        fw_min.total_blocks,
        el_min.generation_blocks
    );
}

#[test]
fn recirculation_shrinks_the_last_generation() {
    use elog_harness::minspace::el_min_last_gen;
    let runtime = 60;
    let norec = paper_base(0.05, false, runtime);
    let norec_min = el_min_space(&norec, 28, 256);
    let g0 = norec_min.generation_blocks[0];

    let rec = paper_base(0.05, true, runtime);
    let rec_min = el_min_last_gen(&rec, g0, 256).expect("feasible");

    assert!(
        rec_min.generation_blocks[1] <= norec_min.generation_blocks[1],
        "recirculation must not need a larger last generation: {:?} vs {:?}",
        rec_min.generation_blocks,
        norec_min.generation_blocks
    );
}
