//! Integration tests of the minimum-space search against first-principles
//! bounds derived from the workload arithmetic.

use elog_core::MemoryModel;
use elog_harness::minspace::{fw_min_space, paper_base};
use elog_harness::{LatticeLimits, MinSpaceResult, RunConfig, SearchRequest};

/// Two-generation minimum through the unified search API (what the
/// since-removed `el_min_space` shim used to wrap).
fn el_min_space(base: &RunConfig, g0_max: u32, g1_limit: u32) -> MinSpaceResult {
    SearchRequest::lattice(
        base,
        LatticeLimits {
            prefix_max: vec![g0_max],
            last_limit: g1_limit,
        },
    )
    .jobs(elog_harness::sweep::default_jobs())
    .run()
    .min
}

/// Log payload rate at 100 TPS for the paper mix (bytes/s):
/// data `100·(2(1−p)+4p)·100` + tx `100·2·8`.
fn payload_rate(frac_long: f64) -> f64 {
    100.0 * ((2.0 * (1.0 - frac_long) + 4.0 * frac_long) * 100.0 + 16.0)
}

#[test]
fn fw_minimum_tracks_oldest_transaction_arithmetic() {
    // FW must hold everything written while the oldest active transaction
    // (10 s) lives: ≈ 10 s of traffic, in 2000-byte blocks, plus slack for
    // the gap, group commit and block granularity.
    let runtime = 60;
    for frac in [0.05, 0.20] {
        let mut base = paper_base(frac, false, runtime);
        base.el.memory_model = MemoryModel::Firewall;
        let min = fw_min_space(&base, 2048);
        let floor = 10.0 * payload_rate(frac) / 2000.0;
        assert!(
            f64::from(min.total_blocks) > floor * 0.95,
            "mix {frac}: FW minimum {} below the 10 s floor {floor:.0}",
            min.total_blocks
        );
        assert!(
            f64::from(min.total_blocks) < floor * 1.35,
            "mix {frac}: FW minimum {} too far above the floor {floor:.0}",
            min.total_blocks
        );
    }
}

#[test]
fn el_minimum_is_insensitive_to_longer_runtimes() {
    // The minimum reflects steady-state occupancy, not accumulated
    // history: doubling the horizon must not move it much. (Longer runs
    // sample more of the workload's tail, so ±2 blocks of drift is fine.)
    let short = el_min_space(&paper_base(0.05, false, 30), 26, 192);
    let long = el_min_space(&paper_base(0.05, false, 60), 26, 192);
    let d = i64::from(short.total_blocks) - i64::from(long.total_blocks);
    assert!(
        d.abs() <= 4,
        "minimum drifted with runtime: {:?} vs {:?}",
        short.generation_blocks,
        long.generation_blocks
    );
}

#[test]
fn el_minimum_grows_with_long_fraction() {
    // Figure 4's EL curve rises with the mix.
    let at_5 = el_min_space(&paper_base(0.05, false, 40), 26, 256);
    let at_40 = el_min_space(&paper_base(0.40, false, 40), 26, 256);
    assert!(
        at_40.total_blocks > at_5.total_blocks,
        "EL needs more space at 40% ({}) than at 5% ({})",
        at_40.total_blocks,
        at_5.total_blocks
    );
}

#[test]
fn search_is_deterministic() {
    let a = el_min_space(&paper_base(0.05, false, 30), 24, 128);
    let b = el_min_space(&paper_base(0.05, false, 30), 24, 128);
    assert_eq!(a.generation_blocks, b.generation_blocks);
    assert_eq!(a.probes, b.probes);
}
