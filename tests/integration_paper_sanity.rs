//! Sanity checks tying the simulation directly to numbers stated in the
//! paper's text (scaled-down runtimes; the full 500 s numbers are produced
//! by the `repro` binary and recorded in EXPERIMENTS.md).

use elog_core::{ElConfig, MemoryModel};
use elog_harness::runner::{run, RunConfig};
use elog_model::{FlushConfig, LogConfig};
use elog_sim::SimTime;
use elog_workload::TxMix;

fn paper_cfg(frac_long: f64, blocks: Vec<u32>, recirc: bool, secs: u64) -> RunConfig {
    let log = LogConfig {
        generation_blocks: blocks,
        recirculation: recirc,
        ..LogConfig::default()
    };
    let mut cfg = RunConfig::paper(frac_long, ElConfig::ephemeral(log, FlushConfig::default()));
    cfg.runtime = SimTime::from_secs(secs);
    cfg
}

#[test]
fn update_rates_match_section4() {
    // "the average number of updates per second rises from 210 to 280"
    assert!((TxMix::paper_mix(0.05).mean_update_rate(100.0) - 210.0).abs() < 1e-9);
    assert!((TxMix::paper_mix(0.40).mean_update_rate(100.0) - 280.0).abs() < 1e-9);
}

#[test]
fn flush_array_capacity_matches_section4() {
    // "10 disk drives with a transfer time of 25 ms (net bandwidth is 400
    // flushes per second)" and "a maximum bandwidth of 222 writes per sec"
    // at 45 ms.
    let ample = FlushConfig {
        drives: 10,
        transfer_time: SimTime::from_millis(25),
    };
    assert!((ample.max_flush_rate() - 400.0).abs() < 1e-6);
    let scarce = FlushConfig {
        drives: 10,
        transfer_time: SimTime::from_millis(45),
    };
    assert!((scarce.max_flush_rate() - 222.2).abs() < 0.1);
}

#[test]
fn paper_geometry_survives_and_hits_paper_bandwidth() {
    // At the paper's published minima, a 60 s run must be kill-free and
    // land near the published block-write rates (11.63 FW, 12.87 EL).
    let mut fw = paper_cfg(0.05, vec![124], false, 60);
    fw.el.memory_model = MemoryModel::Firewall;
    let fw = run(&fw);
    assert_eq!(fw.killed, 0);
    assert!(
        (fw.metrics.log_write_rate - 11.63).abs() < 0.8,
        "FW bandwidth {} vs paper 11.63",
        fw.metrics.log_write_rate
    );

    let el = run(&paper_cfg(0.05, vec![18, 16], false, 60));
    assert_eq!(el.killed, 0);
    assert!(
        (el.metrics.log_write_rate - 12.87).abs() < 0.9,
        "EL bandwidth {} vs paper 12.87",
        el.metrics.log_write_rate
    );
    // Generation 0 carries the raw input (~11.3 blocks/s); generation 1
    // only the forwarded overflow (footnote 7).
    assert!(el.metrics.per_gen_write_rate[0] > 10.0);
    assert!(el.metrics.per_gen_write_rate[1] < 3.0);
}

#[test]
fn memory_estimates_match_paper_constants() {
    // "FW … 22 bytes for each transaction", "EL … 40 bytes for each
    // transaction and 40 bytes for each updated (but unflushed) object".
    // At 5%: ~145 concurrently active transactions (Little's law).
    let mut fw = paper_cfg(0.05, vec![130], false, 30);
    fw.el.memory_model = MemoryModel::Firewall;
    let fw = run(&fw);
    let fw_txns = fw.metrics.peak_memory_bytes / 22;
    assert!(
        (140..=260).contains(&fw_txns),
        "FW peak transactions-in-system {fw_txns} out of range"
    );

    let el = run(&paper_cfg(0.05, vec![18, 16], false, 30));
    // EL peak = 40·LTT + 40·LOT; both peaks are a few hundred.
    assert!(el.metrics.peak_memory_bytes > 5_000);
    assert!(
        el.metrics.peak_memory_bytes < 40_000,
        "paper: memory is modest"
    );
}

#[test]
fn flush_locality_matches_queueing_argument() {
    // 25 ms case: queues are shallow, successive flush oids are nearly
    // random within each drive's 10^6 range → mean wraparound distance
    // ≈ 250 000·(something slightly under 1). Paper observed 235 000.
    let el = run(&paper_cfg(0.05, vec![18, 16], false, 60));
    let d = el.metrics.mean_seek_distance.expect("flushes happened");
    assert!(
        (150_000.0..260_000.0).contains(&d),
        "25 ms flush distance {d} out of the near-random band"
    );
}

#[test]
fn group_commit_latency_is_tens_of_milliseconds() {
    // A block fills in ~2000 B / 22.6 KB/s ≈ 88 ms; commits wait on
    // average half a fill plus the 15 ms transfer.
    let el = run(&paper_cfg(0.05, vec![18, 16], false, 30));
    let p50 = el.mean_commit_latency_ms.expect("commits happened");
    assert!(
        (15.0..150.0).contains(&p50),
        "p50 commit latency {p50} ms out of range"
    );
}
