//! The sweep executor's contract: `--jobs N` output is byte-identical to
//! `--jobs 1`, and per-scenario seeding is deterministic and independent
//! of worker count, execution order and the surrounding scenario set.

use elog_harness::experiments::{fig7, rates, recovery_time, registry};
use elog_harness::sweep::{derive_seed, run_experiments, run_scenarios, ExecOptions};

fn exec(jobs: usize) -> ExecOptions {
    ExecOptions {
        jobs,
        progress: false,
    }
}

/// Renders every registry experiment's full quick report to one string —
/// exactly what `repro --quick` prints to stdout.
fn quick_report(jobs: usize) -> String {
    let experiments = registry();
    let reports = run_experiments(&experiments, true, &exec(jobs));
    let mut out = String::new();
    for report in &reports {
        for (slug, table) in &report.tables {
            out.push_str(slug);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &report.notes {
            out.push_str(note);
            out.push('\n');
        }
    }
    out
}

#[test]
fn quick_report_is_byte_identical_across_job_counts() {
    let serial = quick_report(1);
    let parallel = quick_report(4);
    assert!(!serial.is_empty());
    assert!(
        serial.contains("Figure 4") && serial.contains("Recovery") && serial.contains("hybrid"),
        "report must cover all experiments:\n{serial}"
    );
    assert_eq!(
        serial, parallel,
        "--jobs 4 must match --jobs 1 byte for byte"
    );
}

#[test]
fn job_counts_beyond_scenario_count_are_harmless() {
    // More workers than work: the executor must leave the idle workers
    // starved without perturbing outcomes or ordering.
    let pair = recovery_time::scenarios_for(&recovery_time::Config::quick());
    let serial = run_scenarios(&pair, &exec(1));
    let oversubscribed = run_scenarios(&pair, &exec(pair.len() + 6));
    assert_eq!(
        recovery_time::table(&serial).render(),
        recovery_time::table(&oversubscribed).render(),
        "idle workers must not change a byte"
    );
}

#[test]
fn quick_report_matches_between_one_job_and_all_cpus() {
    // `--jobs 1` vs `--jobs $(nproc)`: the two extremes of the scheduling
    // space the user can actually reach from the CLI.
    let ncpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let serial = quick_report(1);
    let all_cpus = quick_report(ncpus);
    assert_eq!(
        serial, all_cpus,
        "--jobs {ncpus} must match --jobs 1 byte for byte"
    );
}

#[test]
fn scenario_outcomes_do_not_depend_on_neighbours() {
    // A scenario's result must be a function of (its config, its seed
    // index) alone: running the recovery pair alone or embedded in a
    // larger mixed sweep must not change a byte of its table.
    let pair = recovery_time::scenarios_for(&recovery_time::Config::quick());
    let alone = run_scenarios(&pair, &exec(2));

    let mut mixed = rates::scenarios_for(&rates::Config {
        runtime_secs: 10,
        ..rates::Config::paper()
    });
    let offset = mixed.len();
    mixed.extend(pair.clone());
    mixed.extend(fig7::scenarios_for(&fig7::Config {
        runtime_secs: 10,
        ..fig7::Config::quick()
    }));
    let embedded = run_scenarios(&mixed, &exec(3));

    let alone_table = recovery_time::table(&alone).render();
    let embedded_table = recovery_time::table(&embedded[offset..offset + pair.len()]).render();
    assert_eq!(alone_table, embedded_table);
}

#[test]
fn seed_derivation_is_stable() {
    // The derivation is part of the output contract: changing it silently
    // re-rolls every published number. Pin a few values.
    assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    let base = 0x5EED_1993;
    let d: Vec<u64> = (0..4).map(|i| derive_seed(base, i)).collect();
    for (i, a) in d.iter().enumerate() {
        for b in &d[i + 1..] {
            assert_ne!(a, b, "indices must map to distinct seeds");
        }
    }
    // Same index, different base.
    assert_ne!(derive_seed(1, 7), derive_seed(2, 7));
}
