//! Cross-crate integration: crash the *full* simulation (workload driver +
//! log manager + flush array) at many instants and verify single-pass
//! recovery against the oracle, for EL and FW, with and without
//! recirculation, through both the typed and byte-level scan paths.

use elog_core::{ElConfig, MemoryModel};
use elog_harness::runner::{build_model, RunConfig};
use elog_model::{FlushConfig, LogConfig};
use elog_recovery::{check_against_oracle, recover, scan_blocks, scan_bytes};
use elog_sim::SimTime;

fn crash_and_verify(mut cfg: RunConfig, crash_secs: f64) {
    cfg.track_oracle = true;
    cfg.runtime = SimTime::from_secs_f64(crash_secs + 5.0);
    let mut engine = build_model(&cfg);
    engine.run_until(SimTime::from_secs_f64(crash_secs));
    let model = engine.model();
    assert_eq!(
        model.lm.stats().durability_violations,
        0,
        "paper-scale geometry must never violate durability holds"
    );

    let surface = model.lm.log_surface();
    let image = scan_blocks(surface.iter());
    let state = recover(&image, model.lm.stable_db());
    let report = check_against_oracle(&model.oracle, &state);
    assert!(
        report.is_ok(),
        "crash at {crash_secs}s: missing {:?} stale {:?}",
        report.missing,
        report.stale
    );
    // The oracle's every object must be covered.
    assert!(report.exact + report.acceptable_newer >= model.oracle.len() as u64);
}

fn el_cfg(recirc: bool) -> RunConfig {
    let log = LogConfig {
        generation_blocks: vec![18, 16],
        recirculation: recirc,
        ..LogConfig::default()
    };
    RunConfig::paper(0.05, ElConfig::ephemeral(log, FlushConfig::default()))
}

#[test]
fn el_crash_matrix() {
    for crash in [3.3, 7.7, 15.2] {
        crash_and_verify(el_cfg(false), crash);
        crash_and_verify(el_cfg(true), crash);
    }
}

#[test]
fn fw_crash_matrix() {
    for crash in [4.1, 12.9] {
        let mut cfg = RunConfig::paper(0.05, ElConfig::firewall(140, FlushConfig::default()));
        cfg.el.memory_model = MemoryModel::Firewall;
        crash_and_verify(cfg, crash);
    }
}

#[test]
fn byte_level_recovery_agrees_with_typed_recovery() {
    let mut cfg = el_cfg(true);
    cfg.track_oracle = true;
    cfg.runtime = SimTime::from_secs(12);
    let mut engine = build_model(&cfg);
    engine.run_until(SimTime::from_secs(10));
    let model = engine.model();

    let surface = model.lm.log_surface();
    let typed = recover(&scan_blocks(surface.iter()), model.lm.stable_db());

    let encoded: Vec<Vec<u8>> = surface
        .iter()
        .flat_map(|g| g.iter().map(|b| b.to_bytes()))
        .collect();
    let (image, errors) = scan_bytes(encoded.iter().map(Vec::as_slice));
    assert!(errors.is_empty(), "clean surface must decode: {errors:?}");
    let bytes = recover(&image, model.lm.stable_db());

    assert_eq!(typed.versions.len(), bytes.versions.len());
    for (oid, v) in &typed.versions {
        assert_eq!(bytes.versions.get(oid), Some(v), "divergence at {oid}");
    }
}

#[test]
fn recovery_scales_with_log_size_not_history() {
    // Ten times more history does not grow the scan: the log is bounded by
    // its geometry. (This is the whole point of the paper.)
    let mut short = el_cfg(true);
    short.track_oracle = false;
    short.runtime = SimTime::from_secs(10);
    let mut long = short.clone();
    long.runtime = SimTime::from_secs(100);

    let mut records = Vec::new();
    for cfg in [short, long] {
        let mut engine = build_model(&cfg);
        engine.run_until(cfg.runtime);
        let surface = engine.model().lm.log_surface();
        let image = scan_blocks(surface.iter());
        records.push(image.stats.records);
    }
    let ratio = records[1] as f64 / records[0].max(1) as f64;
    assert!(
        ratio < 1.6,
        "scan size must be bounded by geometry, not history: {} vs {}",
        records[0],
        records[1]
    );
}
