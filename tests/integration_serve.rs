//! Serve-mode pins: the 1-tenant degeneracy (elserve ≡ elsim) and the
//! tenant-isolation property (a tenant's committed record set is identical
//! alone or alongside T−1 others).

use elog_core::ElConfig;
use elog_harness::runner::{run, RunConfig};
use elog_harness::serve::{serve_run, serve_run_recorded, CommittedRecord, ServeConfig};
use elog_model::{FlushConfig, LogConfig};
use elog_sim::SimTime;
use elog_workload::ArrivalProcess;

fn base(runtime_secs: u64, rate_tps: f64) -> RunConfig {
    let log = LogConfig {
        generation_blocks: vec![36, 32],
        ..LogConfig::default()
    };
    let mut cfg = RunConfig::paper(0.05, ElConfig::ephemeral(log, FlushConfig::default()));
    cfg.arrivals = ArrivalProcess::Deterministic { rate_tps };
    cfg.runtime = SimTime::from_secs(runtime_secs);
    cfg
}

/// One tenant is the classic run: same driver seed, identity tid/oid
/// mappings, same horizon — every counter and metric must agree with
/// `run()` exactly. (The binaries pin the rendered bytes on top of this;
/// ci.sh diffs elsim against elserve --tenants 1.)
#[test]
fn one_tenant_serve_matches_the_classic_run() {
    let cfg = base(20, 100.0);
    let classic = run(&cfg);
    let served = serve_run(&ServeConfig::new(cfg, 1));

    assert_eq!(served.per_tenant.len(), 1);
    assert_eq!(served.aggregate.started, classic.started);
    assert_eq!(served.aggregate.committed, classic.committed);
    assert_eq!(served.aggregate.killed, classic.killed);
    assert_eq!(served.aggregate.throttled, 0);
    assert_eq!(served.aggregate.data_records, classic.data_records);
    assert_eq!(
        served.mean_commit_latency_ms,
        classic.mean_commit_latency_ms
    );

    let (a, b) = (&served.metrics, &classic.metrics);
    assert_eq!(a.log_writes, b.log_writes);
    assert_eq!(a.flushes, b.flushes);
    assert_eq!(a.peak_memory_bytes, b.peak_memory_bytes);
    assert_eq!(a.ltt_peak, b.ltt_peak);
    assert_eq!(a.stats.forwarded_records, b.stats.forwarded_records);
    assert_eq!(a.stats.recirculated_records, b.stats.recirculated_records);
    assert_eq!(a.stats.unsafe_drops, 0);
    assert_eq!(a.stats.durability_violations, 0);
}

fn sorted(mut set: Vec<CommittedRecord>) -> Vec<CommittedRecord> {
    set.sort_unstable();
    set
}

/// The splitmix64 isolation property: each tenant's workload is a pure
/// function of `(base seed, tenant index)` over its own oid slice, so the
/// committed `(tid, seq, oid)` set (tenant-local spaces) is identical
/// whether the tenant runs alone or multiplexed with others — neighbours
/// shift *when* records commit, never *which*.
///
/// The comparison covers the run's prefix (transactions arriving in the
/// first 6 of 20 seconds). A commit acknowledgement requires the block
/// holding the COMMIT record to fill and flush, so the trailing window's
/// acks depend on how much record volume *follows* them — a property of
/// total load, not of the tenant's stream. Prefix transactions (even long
/// 10 s ones, which commit by 16 s) have seconds of full-rate arrivals
/// behind them in both runs, so their acks always land by the drain.
#[test]
fn tenant_commits_are_identical_alone_or_multiplexed() {
    let tenants = 3;
    let horizon = 20;
    let rate_tps = 25.0;
    let drain = SimTime::from_secs(horizon + 60);
    // Deterministic arrivals: tenant-local tid t arrives at t / rate.
    let cutoff_tid = (6.0 * rate_tps) as u64;
    let prefix = |set: &[CommittedRecord]| {
        sorted(set.iter().copied().filter(|r| r.0 < cutoff_tid).collect())
    };

    let group_cfg = ServeConfig::new(base(horizon, rate_tps), tenants).with_drain(drain);
    let (group, group_sets) = serve_run_recorded(&group_cfg, true);
    assert_eq!(group.aggregate.killed, 0, "property needs kill-free runs");
    assert_eq!(group.aggregate.throttled, 0);

    for (t, group_set) in group_sets.iter().enumerate() {
        // Replay tenant t solo: hand its stream seed and its oid slice
        // length to a 1-tenant instance (tenant 0 keeps the seed raw, and
        // the driver draws oids from [0, len) in both runs).
        let mut solo_base = base(horizon, rate_tps);
        solo_base.seed = group_cfg.tenant_seed(t);
        solo_base.el.db.num_objects = group_cfg.layout.ranges[t].1;
        let solo_cfg = ServeConfig::new(solo_base, 1).with_drain(drain);
        let (solo, solo_sets) = serve_run_recorded(&solo_cfg, true);
        assert_eq!(solo.aggregate.killed, 0, "property needs kill-free runs");

        let multiplexed = prefix(group_set);
        let alone = prefix(&solo_sets[0]);
        // Every prefix transaction must have committed: 2 records each for
        // the short-transaction majority.
        assert!(
            alone.len() as u64 >= 2 * cutoff_tid,
            "tenant {t} solo prefix too small: {} records",
            alone.len()
        );
        assert_eq!(
            multiplexed, alone,
            "tenant {t}'s committed set changed under multiplexing"
        );
    }

    // Distinct streams: no two tenants committed the same record set.
    assert_ne!(prefix(&group_sets[0]), prefix(&group_sets[1]));
    assert_ne!(prefix(&group_sets[1]), prefix(&group_sets[2]));
}
