//! Minimal offline stand-in for the `bytes` crate.
//!
//! The workspace's container has no registry access, so external crates
//! are stubbed locally (see `vendor/README.md`). This crate provides only
//! what `elog-storage`'s codec uses: the [`Buf`] accessor methods on
//! `&[u8]` (self-advancing reads) and the [`BufMut`] little-endian
//! appenders on `Vec<u8>`. Semantics match the real crate for this
//! subset; panics on underflow, exactly like `bytes`.

/// Sequential big-picture reader over a byte source.
///
/// Implemented for `&[u8]`: every `get_*` consumes from the front of the
/// slice (the slice itself advances).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of slice");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Append-only byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_slice(b"xyz");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0102_0304_0506_0708);
        let mut rest = [0u8; 3];
        buf.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf: &[u8] = &data;
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let data = [1u8];
        let mut buf: &[u8] = &data;
        let _ = buf.get_u32_le();
    }
}
