//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace's container has no registry access, so external crates
//! are stubbed locally (see `vendor/README.md`). This crate implements
//! the subset the workspace's property suites use: range / tuple /
//! `prop_map` / `collection::vec` / `bool::weighted` / `any` strategies,
//! `prop_oneof!`, `sample::Index`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - **No shrinking.** A failing case reports its number; rerun with the
//!   same build to reproduce (generation is deterministic per case).
//! - **Fixed derivation.** Values come from a splitmix64/xoshiro stream
//!   keyed by the case number, not from the real crate's RNG, so exact
//!   generated values differ from upstream proptest.

pub mod test_runner {
    //! Deterministic case generation and run configuration.

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the heavier simulation
            // properties quick on small machines while still varying
            // inputs meaningfully.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (xoshiro256++ seeded by
    /// splitmix64 over the case number).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// The generator for case number `case` — the same stream every
        /// run, so failures reproduce without a persisted seed file.
        pub fn for_case(case: u32) -> Self {
            let mut x = 0xE1_06_1993u64 ^ ((u64::from(case) + 1) << 32);
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be non-empty), each equally likely.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as u64) - (self.start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    self.start + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the canonical whole-domain strategy per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain generator.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `element` draws with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`weighted`].
    pub struct Weighted {
        probability: f64,
    }

    /// `true` with the given probability.
    pub fn weighted(probability: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&probability));
        Weighted { probability }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.probability
        }
    }
}

pub mod sample {
    //! Index sampling (`any::<prop::sample::Index>()`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An abstract position, concretised against a length via
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// This position within a collection of `len` items (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring the real crate's prelude.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each `fn` runs `cases` times with fresh
/// random inputs; `prop_assert*` failures report the case number.
///
/// Parameters take either form the real macro accepts in this workspace:
/// `name in strategy_expr` or `name: Type` (sugar for `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // -- internal: no more test fns -------------------------------------
    (@fns ($cfg:expr)) => {};
    // -- internal: one test fn, then recurse ----------------------------
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::test_runner::TestRng::for_case(case);
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    $crate::proptest!(@run prop_rng, ($($params)*) $body);
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("case {}/{} failed: {}", case + 1, config.cases, msg);
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // -- internal: bind params, innermost-first, then run the body ------
    (@run $rng:ident, () $body:block) => {
        (|| -> ::std::result::Result<(), ::std::string::String> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    (@run $rng:ident, ($var:ident : $ty:ty) $body:block) => {{
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@run $rng, () $body)
    }};
    (@run $rng:ident, ($var:ident : $ty:ty, $($rest:tt)*) $body:block) => {{
        let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@run $rng, ($($rest)*) $body)
    }};
    (@run $rng:ident, ($var:ident in $($rest:tt)*) $body:block) => {
        $crate::proptest!(@strat $rng, $var, [], ($($rest)*) $body)
    };
    // -- internal: munch one strategy expression up to a top-level comma
    (@strat $rng:ident, $var:ident, [$($acc:tt)*], () $body:block) => {{
        let $var = $crate::strategy::Strategy::new_value(&($($acc)*), &mut $rng);
        $crate::proptest!(@run $rng, () $body)
    }};
    (@strat $rng:ident, $var:ident, [$($acc:tt)*], (, $($rest:tt)*) $body:block) => {{
        let $var = $crate::strategy::Strategy::new_value(&($($acc)*), &mut $rng);
        $crate::proptest!(@run $rng, ($($rest)*) $body)
    }};
    (@strat $rng:ident, $var:ident, [$($acc:tt)*], ($t:tt $($rest:tt)*) $body:block) => {
        $crate::proptest!(@strat $rng, $var, [$($acc)* $t], ($($rest)*) $body)
    };
    // -- entry points ---------------------------------------------------
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Uniform choice between heterogeneous strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Point {
        x: u64,
        y: u64,
    }

    fn arb_point() -> impl Strategy<Value = Point> {
        (0u64..100, 0u64..100).prop_map(|(x, y)| Point { x, y })
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec(0u8..4, 1..50), n in 1u64.., flag: bool) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| x < 4));
            prop_assert!(n >= 1);
            let _ = flag;
        }

        #[test]
        fn mapped_and_union(p in arb_point(), idx in any::<prop::sample::Index>()) {
            prop_assert!(p.x < 100 && p.y < 100);
            prop_assert!(idx.index(7) < 7);
            let s = prop_oneof![(0u64..1).prop_map(|_| 0u64), 5u64..6];
            let v = s.new_value(&mut crate::test_runner::TestRng::for_case(1));
            prop_assert!(v == 0 || v == 5, "got {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honoured(q in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&q));
        }
    }

    #[test]
    fn weighted_frequency() {
        let s = prop::bool::weighted(0.2);
        let mut rng = crate::test_runner::TestRng::for_case(0);
        let hits = (0..10_000).filter(|_| s.new_value(&mut rng)).count();
        assert!((1_500..2_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
