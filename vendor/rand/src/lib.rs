//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace's container has no registry access, so external crates
//! are stubbed locally (see `vendor/README.md`). This crate provides the
//! subset `elog-sim` uses: [`rngs::SmallRng`] (the same xoshiro256++
//! generator the real `SmallRng` uses on 64-bit targets, seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] over the integer and float ranges the
//! simulator draws from. Output streams are deterministic per seed but
//! are not guaranteed bit-identical to the real crate — nothing in this
//! repository depends on the exact stream, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods over a core generator.
pub trait RngExt {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges [`RngExt::random_range`] accepts.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> Self::Output;
}

fn u64_below<G: RngExt + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits: unbiased and cheap for the
    // small bounds the simulator uses.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (u64_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: RngExt + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard the half-open upper bound against rounding.
        if v >= self.end {
            self.start.max(self.end - self.end.abs() * f64::EPSILON)
        } else {
            v.max(self.start)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ —
    /// the algorithm behind the real `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real crate seeds from u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngExt for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(12);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.random_range(0u64..17) < 17);
            let i = r.random_range(0usize..=4);
            assert!(i <= 4);
            let x = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn unit_interval_mean_is_centred() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.random_range(0.0f64..1.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
